//! Internal-unit conventions of the sizing engine, in one place.
//!
//! The optimizer works in a single consistent internal unit system and only
//! the reporting layer converts to the paper's presentation units. Keeping
//! every conversion factor here (instead of scattering `* 1000.0` across
//! call sites) makes an internal-unit bug a one-file review.
//!
//! | Quantity              | Internal unit | Reported unit | Conversion            |
//! |-----------------------|---------------|---------------|-----------------------|
//! | resistance            | Ω             | —             | —                     |
//! | capacitance / power   | fF            | pF / mW       | [`pf_from_ff`], [`mw_from_ff`] |
//! | delay (Elmore `r·C`)  | Ω·fF          | ps            | [`ps_from_internal`]  |
//! | crosstalk             | fF            | pF            | [`pf_from_ff`]        |
//! | area                  | µm²           | µm²           | —                     |
//!
//! The power constraint is expressed on the total switched capacitance
//! `Σ c_i ≤ P' = P_B / (V²·f)`, so "power" is carried in fF internally and
//! scaled to mW by the technology's `power_scale_mw_per_ff` only for
//! reports. All constraint families in [`constraints`](crate::constraints)
//! state their bounds in these internal units.

/// Femtofarads per picofarad.
pub const FF_PER_PF: f64 = 1000.0;

/// Internal delay units (Ω·fF) per picosecond. With resistance in Ω and
/// capacitance in fF, `r·C` comes out in Ω·fF = 10⁻³ Ω·pF = 10⁻³ ps·10³ —
/// numerically, 1000 internal units per ps.
pub const INTERNAL_DELAY_PER_PS: f64 = 1000.0;

/// Converts a capacitance (or crosstalk total) from internal fF to pF.
#[inline]
pub fn pf_from_ff(ff: f64) -> f64 {
    ff / FF_PER_PF
}

/// Converts a capacitance from reported pF back to internal fF.
#[inline]
pub fn ff_from_pf(pf: f64) -> f64 {
    pf * FF_PER_PF
}

/// Converts an internal Elmore delay (Ω·fF) to picoseconds.
#[inline]
pub fn ps_from_internal(delay: f64) -> f64 {
    delay / INTERNAL_DELAY_PER_PS
}

/// Converts a reported delay (ps) back to internal Ω·fF.
#[inline]
pub fn internal_from_ps(ps: f64) -> f64 {
    ps * INTERNAL_DELAY_PER_PS
}

/// Converts a total switched capacitance (fF) to dynamic power (mW) using
/// the technology's scale factor `V²·f` (mW per fF).
#[inline]
pub fn mw_from_ff(capacitance_ff: f64, scale_mw_per_ff: f64) -> f64 {
    capacitance_ff * scale_mw_per_ff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(pf_from_ff(ff_from_pf(3.25)), 3.25);
        assert_eq!(ps_from_internal(internal_from_ps(417.0)), 417.0);
        // The helpers are the exact arithmetic the call sites used inline,
        // so replacing the inline forms is bitwise neutral.
        assert_eq!(pf_from_ff(1234.5), 1234.5 / 1000.0);
        assert_eq!(ps_from_internal(1234.5), 1234.5 / 1000.0);
        assert_eq!(mw_from_ff(40.0, 0.25), 40.0 * 0.25);
    }
}
