//! The noise-constrained gate and wire sizing engine — the paper's primary
//! contribution (Sections 4 and 5).
//!
//! The optimization problem `PP` minimizes total area subject to
//!
//! * per-edge arrival-time (delay) constraints with circuit delay bound `A₀`,
//! * a total-power constraint `Σ c_i ≤ P'`,
//! * a total-crosstalk constraint `Σ_{i∈W} Σ_{j∈I(i)} ĉ_ij (x_i + x_j) ≤ X'`,
//! * per-component size bounds `L_i ≤ x_i ≤ U_i`,
//! * any number of extra posynomial constraint families
//!   ([`constraints`]) — per-net (channel-local) crosstalk caps,
//!   per-node driven-load caps, or caller-assembled linear families —
//!   beyond what the paper's fixed three-bound formulation can express.
//!
//! Everything is posynomial, so Lagrangian relaxation solves it to global
//! optimality. The crate implements:
//!
//! * the composable constraint system ([`constraints`]): the
//!   [`ConstraintFamily`] seam, the concrete [`ScalarFamily`]/
//!   [`ConstraintSet`] types, configuration-level [`ConstraintSpec`]s and
//!   their lowering; the paper's three global bounds are the default
//!   (empty-set) instance and keep their exact legacy arithmetic;
//! * the internal-unit conventions in one place ([`units`]);
//! * [`Multipliers`] and the flow-conservation projection of Theorem 3
//!   ([`projection`]);
//! * the **LRS** subroutine (Figure 8): the greedy, provably optimal solver
//!   of the relaxed subproblem via the closed-form resizing of Theorem 5
//!   ([`lrs`]);
//! * the **OGWS** outer loop (Figure 9): subgradient multiplier updates,
//!   projection, and the duality-gap stopping rule ([`ogws`]);
//! * the **solve schedules** ([`schedule`]): the exact Figure-8 inner loop
//!   (bitwise-pinned to [`mod@reference`]) and the adaptive schedule —
//!   warm-started LRS, active-set sweeps with periodic verification, and
//!   sparse incremental evaluation — selected per run via
//!   [`OptimizerConfig::solve_strategy`];
//! * the **level-parallel runtime** ([`par`]): a deterministic chunk grid
//!   over the circuit's topological level partition that distributes the
//!   inner-loop traversals (LRS sweeps, timing, subgradient update, flow
//!   projection) across threads with outcomes **bitwise identical for
//!   every thread count**, selected per run via
//!   [`OptimizerConfig::parallel`] / [`ParallelPolicy`];
//! * the staged [`flow`] pipeline — `prepare → order → size` as typestates
//!   with inspectable intermediates, warm starts, and the legacy one-shot
//!   [`Optimizer`] as a thin wrapper;
//! * run control for the outer loop ([`control`]): progress [`Observer`]s,
//!   cooperative cancellation, iteration budgets and wall-clock deadlines,
//!   with the [`StopReason`] recorded in every outcome;
//! * checkpoint/resume ([`snapshot`], [`control`]): a [`Snapshot`] of
//!   mid-run OGWS state captured through a [`CheckpointSink`] under a
//!   [`CheckpointPolicy`], re-entered via
//!   [`Ordered::size_resume`](flow::Ordered::size_resume) — the substrate
//!   of the `ncgws-serve` job queue;
//! * batch execution of many instances across threads ([`batch`]);
//! * baselines for ablations: delay/area-only Lagrangian sizing and a greedy
//!   sensitivity-based sizer ([`baseline`]);
//! * metrics, reporting and memory accounting for the Table 1 / Figure 10
//!   reproductions ([`metrics`], [`report`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod batch;
pub mod constraints;
pub mod control;
pub mod coupling_build;
pub mod engine;
pub mod error;
pub mod flow;
pub mod kkt;
pub mod lagrangian;
pub mod lrs;
pub mod metrics;
pub mod ogws;
pub mod optimizer;
pub mod par;
pub mod problem;
pub mod projection;
pub mod reference;
pub mod report;
pub mod schedule;
pub mod snapshot;
pub mod step;
pub mod units;

pub use batch::{stop_reason_of, BatchRunner};
pub use constraints::{
    lower_constraint_specs, ConstraintFamily, ConstraintSet, ConstraintSpec, FamilyKind,
    FamilySlack, ScalarConstraint, ScalarFamily,
};
pub use control::{
    CancelFlag, CheckpointPolicy, CheckpointSink, CollectObserver, IterationEvent, Observer,
    RunControl, SnapshotStore, StopReason,
};
pub use coupling_build::{build_coupling, OrderingStrategy, WireOrderingOutcome};
pub use engine::{SizingEngine, TimingView};
pub use error::CoreError;
pub use flow::{Flow, Ordered, Prepared, SizedOutcome};
pub use lagrangian::Multipliers;
pub use lrs::{LrsOutcome, LrsSolver, LrsStats};
pub use metrics::{CircuitMetrics, IterationRecord, MemoryBreakdown};
pub use ogws::{OgwsOutcome, OgwsSolver};
pub use optimizer::{OptimizationOutcome, Optimizer};
pub use par::ParallelPolicy;
pub use problem::{ConstraintBounds, OptimizerConfig, OptimizerConfigBuilder, SizingProblem};
pub use report::{Improvements, OptimizationReport};
pub use schedule::{AdaptiveSchedule, ScheduleState, ScheduledStats, SolveStrategy};
pub use snapshot::Snapshot;
pub use step::StepSchedule;
