//! Physical coupling capacitance modeling (Section 3.1 of the paper).
//!
//! Two neighboring parallel wires `i` and `j` form a coupling capacitor
//!
//! ```text
//! c_ij = f̂_ij · l_ij / (d_ij − (x_i + x_j)/2)
//!      = (f̂_ij · l_ij / d_ij) · 1 / (1 − (x_i + x_j) / (2 d_ij))
//! ```
//!
//! where `f̂_ij` is the unit-length fringing capacitance between the wires,
//! `l_ij` their overlap length, `d_ij` their middle-to-middle distance, and
//! `x_i`, `x_j` their widths. The second factor is expanded as a geometric
//! series and truncated (Theorem 1 of the paper), which yields a
//! **posynomial** expression — the property that makes the whole sizing
//! problem convex after the usual variable transformation.
//!
//! The crate provides:
//!
//! * [`WirePairGeometry`] / [`CouplingPair`] — the per-pair geometry and the
//!   exact, truncated, and linearized (k = 2) capacitance models;
//! * [`posynomial`] — the truncated geometric series and its error bound;
//! * [`CouplingSet`] — all coupling pairs of a circuit, with the neighborhood
//!   map `N(i)`, the dominating index `I(i)`, total-crosstalk evaluation and
//!   the per-node coupling load used by the Elmore engine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capacitance;
pub mod error;
pub mod posynomial;
pub mod set;

pub use capacitance::{CouplingPair, WirePairGeometry};
pub use error::CouplingError;
pub use posynomial::{exact_factor, truncated_factor, truncation_error_ratio};
pub use set::CouplingSet;
