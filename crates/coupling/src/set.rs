//! The full set of coupling pairs of a circuit.

use serde::{Deserialize, Serialize};

use ncgws_circuit::{CircuitGraph, NodeId, SizeVector, LANES};

use crate::capacitance::CouplingPair;
use crate::error::CouplingError;

/// All coupling capacitors of a circuit, with the adjacency structure the
/// optimizer needs: the neighborhood `N(i)` (all wires adjacent to wire `i`)
/// and the dominating index `I(i)` (adjacent wires with a larger node index),
/// so that the double sum `Σ_{i∈W} Σ_{j∈I(i)}` counts every pair exactly once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CouplingSet {
    pairs: Vec<CouplingPair>,
    /// For each raw node index, the indices into `pairs` the node participates in.
    neighbor_pairs: Vec<Vec<usize>>,
    /// For each raw node index, the precomputed switching-weighted linear
    /// coefficient sum `Σ_{j∈N(i)} sf_ij · ĉ_ij` of Theorem 5. Pairs are
    /// immutable after construction, so this never goes stale in-process.
    /// Caveat: a hand-edited serialized form could desynchronize it from
    /// `pairs`; rebuild through [`CouplingSet::new`] rather than
    /// deserializing untrusted data (the vendored serde never deserializes).
    linear_sums: Vec<f64>,
}

impl CouplingSet {
    /// An empty coupling set for a circuit (no crosstalk).
    pub fn empty(graph: &CircuitGraph) -> Self {
        CouplingSet {
            pairs: Vec::new(),
            neighbor_pairs: vec![Vec::new(); graph.num_nodes()],
            linear_sums: vec![0.0; graph.num_nodes()],
        }
    }

    /// Builds a coupling set, validating every pair against the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if a pair references a non-wire node, duplicates
    /// another pair, or its pitch cannot accommodate the wires at their
    /// maximum widths (which would make the exact model diverge).
    pub fn new(graph: &CircuitGraph, pairs: Vec<CouplingPair>) -> Result<Self, CouplingError> {
        let mut neighbor_pairs = vec![Vec::new(); graph.num_nodes()];
        let mut seen = std::collections::HashSet::new();
        for (idx, pair) in pairs.iter().enumerate() {
            for id in [pair.a, pair.b] {
                if id.index() >= graph.num_nodes() || !graph.node(id).kind.is_wire() {
                    return Err(CouplingError::NotAWire(id));
                }
            }
            if !seen.insert((pair.a, pair.b)) {
                return Err(CouplingError::DuplicatePair(pair.a, pair.b));
            }
            let max_a = graph.node(pair.a).attrs.upper_bound;
            let max_b = graph.node(pair.b).attrs.upper_bound;
            if (max_a + max_b) / 2.0 >= pair.geometry.distance {
                return Err(CouplingError::PitchTooSmall {
                    a: pair.a,
                    b: pair.b,
                    distance: pair.geometry.distance,
                });
            }
            neighbor_pairs[pair.a.index()].push(idx);
            neighbor_pairs[pair.b.index()].push(idx);
        }
        // Accumulate in neighbor-iteration order so the cached sums are
        // bitwise identical to a fresh `neighbors(i)` summation.
        let mut linear_sums = vec![0.0; graph.num_nodes()];
        for (node, pair_indices) in neighbor_pairs.iter().enumerate() {
            for &pi in pair_indices {
                let p = &pairs[pi];
                linear_sums[node] += p.switching_factor * p.linear_coefficient();
            }
        }
        Ok(CouplingSet {
            pairs,
            neighbor_pairs,
            linear_sums,
        })
    }

    /// Number of coupling pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if there are no coupling pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// All pairs.
    pub fn pairs(&self) -> &[CouplingPair] {
        &self.pairs
    }

    /// Iterator over the neighborhood `N(i)` of a wire: `(other wire, pair)`.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, &CouplingPair)> + '_ {
        self.neighbor_pairs
            .get(id.index())
            .into_iter()
            .flatten()
            .map(move |&pi| {
                (
                    self.pairs[pi].other(id).expect("pair contains id"),
                    &self.pairs[pi],
                )
            })
    }

    /// The dominating index `I(i)`: neighbors of `i` with a larger node index.
    pub fn dominating(&self, id: NodeId) -> impl Iterator<Item = (NodeId, &CouplingPair)> + '_ {
        self.neighbors(id).filter(move |(other, _)| *other > id)
    }

    /// Number of neighbors of a wire.
    pub fn degree(&self, id: NodeId) -> usize {
        self.neighbor_pairs
            .get(id.index())
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// Sum of the (switching-factor weighted) linear coefficients
    /// `Σ_{j∈N(i)} ĉ_ij` of wire `i` — the quantity appearing in Theorem 5's
    /// denominator. With the default neutral switching factors this is the
    /// purely physical sum.
    pub fn linear_coefficient_sum(&self, id: NodeId) -> f64 {
        self.linear_sums[id.index()]
    }

    /// Recomputes the linear coefficient sum by walking the neighbor list —
    /// the pre-cache implementation, kept for the allocate-per-call
    /// reference path and as the oracle the cached sums are validated
    /// against (same accumulation order, so bitwise identical).
    pub fn linear_coefficient_sum_uncached(&self, id: NodeId) -> f64 {
        self.neighbors(id)
            .map(|(_, p)| p.switching_factor * p.linear_coefficient())
            .sum()
    }

    /// The precomputed per-node linear coefficient sums, indexed by raw node
    /// index — the dense view the sizing engine reads directly.
    pub fn linear_coefficient_sums(&self) -> &[f64] {
        &self.linear_sums
    }

    /// `Σ_{j∈N(i)} ĉ_ij · x_j` for wire `i` (Theorem 5's numerator term),
    /// weighted by the switching factors.
    pub fn weighted_neighbor_width(
        &self,
        graph: &CircuitGraph,
        id: NodeId,
        sizes: &SizeVector,
    ) -> f64 {
        self.neighbors(id)
            .map(|(other, p)| {
                p.switching_factor * p.linear_coefficient() * graph.size_of(other, sizes)
            })
            .sum()
    }

    /// Total crosstalk `X = Σ_{i∈W} Σ_{j∈I(i)} c_ij` using the linearized
    /// model (each pair counted once), weighted by the switching factor.
    pub fn total_crosstalk(&self, graph: &CircuitGraph, sizes: &SizeVector) -> f64 {
        self.pairs
            .iter()
            .map(|p| {
                p.switching_factor
                    * p.linearized_capacitance(graph.size_of(p.a, sizes), graph.size_of(p.b, sizes))
            })
            .sum()
    }

    /// Total *physical* coupling capacitance (switching factors ignored),
    /// using the exact model. This is the quantity the paper's noise column
    /// reports before/after sizing.
    pub fn total_physical_coupling(&self, graph: &CircuitGraph, sizes: &SizeVector) -> f64 {
        self.pairs
            .iter()
            .map(|p| p.exact_capacitance(graph.size_of(p.a, sizes), graph.size_of(p.b, sizes)))
            .sum()
    }

    /// The constant part of the linearized total crosstalk,
    /// `Σ_{i∈W} Σ_{j∈I(i)} ~c_ij`, used to convert the crosstalk bound `X_B`
    /// into the reduced bound `X' = X_B − Σ ~c_ij`.
    pub fn total_base_capacitance(&self) -> f64 {
        self.pairs
            .iter()
            .map(|p| p.switching_factor * p.base_capacitance())
            .sum()
    }

    /// The size-dependent part of the linearized total crosstalk,
    /// `Σ_{i∈W} Σ_{j∈I(i)} ĉ_ij (x_i + x_j)` — the left-hand side of the
    /// reduced crosstalk constraint.
    pub fn crosstalk_lhs(&self, graph: &CircuitGraph, sizes: &SizeVector) -> f64 {
        self.pairs
            .iter()
            .map(|p| {
                p.switching_factor
                    * p.linear_coefficient()
                    * (graph.size_of(p.a, sizes) + graph.size_of(p.b, sizes))
            })
            .sum()
    }

    /// Per-node coupling load (fF) to hand to the Elmore engine as extra
    /// downstream capacitance: wire `i` is loaded by
    /// `Σ_{j∈N(i)} sf_ij · (~c_ij + ĉ_ij (x_i + x_j))`, where the switching
    /// factor models the Miller / anti-Miller effect on delay.
    pub fn delay_load_per_node(&self, graph: &CircuitGraph, sizes: &SizeVector) -> Vec<f64> {
        let mut load = vec![0.0; graph.num_nodes()];
        self.delay_load_into(graph, sizes, &mut load);
        load
    }

    /// Fills `load` (one slot per raw node index) with the per-node coupling
    /// load, without allocating — the hot-loop variant of
    /// [`delay_load_per_node`](Self::delay_load_per_node). Runs in `O(P)`
    /// over the precomputed pair list.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `load` has the wrong length.
    pub fn delay_load_into(&self, graph: &CircuitGraph, sizes: &SizeVector, load: &mut [f64]) {
        debug_assert_eq!(load.len(), graph.num_nodes());
        load.fill(0.0);
        // Blocked scatter: each pair's capacitance is independent
        // arithmetic, so a LANES-wide block computes four at once before
        // touching the accumulator; the scatter adds then run in exact
        // global pair order, so every node's accumulation sequence — and
        // with it the result — stays bitwise identical to the
        // one-pair-at-a-time loop.
        let np = self.pairs.len();
        let mut at = 0usize;
        while at + LANES <= np {
            let mut cap = [0.0f64; LANES];
            for (j, slot) in cap.iter_mut().enumerate() {
                let p = &self.pairs[at + j];
                *slot = p.switching_factor
                    * p.linearized_capacitance(
                        graph.size_of(p.a, sizes),
                        graph.size_of(p.b, sizes),
                    );
            }
            for (j, &c) in cap.iter().enumerate() {
                let p = &self.pairs[at + j];
                load[p.a.index()] += c;
                load[p.b.index()] += c;
            }
            at += LANES;
        }
        for p in &self.pairs[at..] {
            let c = p.switching_factor
                * p.linearized_capacitance(graph.size_of(p.a, sizes), graph.size_of(p.b, sizes));
            load[p.a.index()] += c;
            load[p.b.index()] += c;
        }
    }

    /// Indices (into [`pairs`](Self::pairs)) of the pairs whose **both**
    /// endpoints belong to `members` — the channel-local subset of the
    /// coupling a per-net constraint aggregates over. Order follows the
    /// global pair list, so repeated calls are deterministic.
    pub fn group_pair_indices(&self, members: &[NodeId]) -> Vec<usize> {
        let set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
        self.pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| set.contains(&p.a) && set.contains(&p.b))
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Sums `per_pair` over the pairs whose both endpoints lie in `members`
    /// — the single scan every `group_*` aggregate shares (one membership
    /// set, no intermediate index list).
    fn group_pair_sum(&self, members: &[NodeId], per_pair: impl Fn(&CouplingPair) -> f64) -> f64 {
        let set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
        self.pairs
            .iter()
            .filter(|p| set.contains(&p.a) && set.contains(&p.b))
            .map(per_pair)
            .sum()
    }

    /// The size-independent part `Σ sf_ij · ~c_ij` of the linearized
    /// crosstalk restricted to pairs within `members` (the group analogue of
    /// [`total_base_capacitance`](Self::total_base_capacitance)).
    pub fn group_base_capacitance(&self, members: &[NodeId]) -> f64 {
        self.group_pair_sum(members, |p| p.switching_factor * p.base_capacitance())
    }

    /// Per-member linear coefficients of the group-restricted crosstalk:
    /// for each wire `i` in `members`, `Σ_{j ∈ N(i) ∩ members} sf_ij · ĉ_ij`
    /// — the coefficient of `x_i` in
    /// `Σ_{pairs in group} sf_ij · ĉ_ij · (x_i + x_j)`. Members with no
    /// in-group neighbor are omitted. This is what a per-net (channel-local)
    /// crosstalk cap lowers into a linear posynomial constraint.
    pub fn group_linear_sums(&self, members: &[NodeId]) -> Vec<(NodeId, f64)> {
        let set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
        members
            .iter()
            .filter_map(|&id| {
                let sum: f64 = self
                    .neighbors(id)
                    .filter(|(other, _)| set.contains(other))
                    .map(|(_, p)| p.switching_factor * p.linear_coefficient())
                    .sum();
                (sum > 0.0).then_some((id, sum))
            })
            .collect()
    }

    /// The size-dependent part `Σ sf_ij · ĉ_ij · (x_i + x_j)` of the
    /// linearized crosstalk restricted to pairs within `members` (the group
    /// analogue of [`crosstalk_lhs`](Self::crosstalk_lhs)).
    pub fn group_crosstalk_lhs(
        &self,
        graph: &CircuitGraph,
        sizes: &SizeVector,
        members: &[NodeId],
    ) -> f64 {
        self.group_pair_sum(members, |p| {
            p.switching_factor
                * p.linear_coefficient()
                * (graph.size_of(p.a, sizes) + graph.size_of(p.b, sizes))
        })
    }

    /// Total linearized crosstalk of the pairs within `members`: the group
    /// base capacitance plus the group lhs — the quantity a per-net cap
    /// bounds.
    pub fn group_crosstalk(
        &self,
        graph: &CircuitGraph,
        sizes: &SizeVector,
        members: &[NodeId],
    ) -> f64 {
        self.group_pair_sum(members, |p| {
            p.switching_factor
                * p.linearized_capacitance(graph.size_of(p.a, sizes), graph.size_of(p.b, sizes))
        })
    }

    /// An estimate (in bytes) of the memory held by the coupling data
    /// structures, used by the Figure 10(a) reproduction.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pairs.capacity() * size_of::<CouplingPair>()
            + self
                .neighbor_pairs
                .iter()
                .map(|v| size_of::<Vec<usize>>() + v.capacity() * size_of::<usize>())
                .sum::<usize>()
            + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacitance::WirePairGeometry;
    use ncgws_circuit::{CircuitBuilder, GateKind, Technology};

    /// d -> w1 -> g -> w2 -> out, plus a sibling wire w3 from a second driver.
    fn circuit() -> CircuitGraph {
        let mut b = CircuitBuilder::new(Technology::dac99());
        let d = b.add_driver("d", 100.0).unwrap();
        let d2 = b.add_driver("d2", 100.0).unwrap();
        let w1 = b.add_wire("w1", 100.0).unwrap();
        let g = b.add_gate("g", GateKind::Inv).unwrap();
        let w2 = b.add_wire("w2", 100.0).unwrap();
        let w3 = b.add_wire("w3", 100.0).unwrap();
        b.connect(d, w1).unwrap();
        b.connect(w1, g).unwrap();
        b.connect(g, w2).unwrap();
        b.connect(d2, w3).unwrap();
        b.connect_output(w2, 5.0).unwrap();
        b.connect_output(w3, 5.0).unwrap();
        b.build().unwrap()
    }

    fn geom() -> WirePairGeometry {
        WirePairGeometry::new(80.0, 20.0, 0.03).unwrap()
    }

    fn wire(c: &CircuitGraph, name: &str) -> NodeId {
        c.node_by_name(name).unwrap()
    }

    #[test]
    fn build_and_query_neighbors() {
        let c = circuit();
        let (w1, w2, w3) = (wire(&c, "w1"), wire(&c, "w2"), wire(&c, "w3"));
        let pairs = vec![
            CouplingPair::new(w1, w2, geom()).unwrap(),
            CouplingPair::new(w2, w3, geom()).unwrap(),
        ];
        let set = CouplingSet::new(&c, pairs).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.degree(w2), 2);
        assert_eq!(set.degree(w1), 1);
        assert_eq!(set.degree(w3), 1);
        let n2: Vec<NodeId> = set.neighbors(w2).map(|(o, _)| o).collect();
        assert!(n2.contains(&w1) && n2.contains(&w3));
        // I(i) counts each pair exactly once across the whole set.
        let total_dominating: usize = c.node_ids().map(|id| set.dominating(id).count()).sum();
        assert_eq!(total_dominating, 2);
    }

    #[test]
    fn rejects_bad_pairs() {
        let c = circuit();
        let g = wire(&c, "w1");
        let gate = c.node_by_name("g").unwrap();
        let bad = vec![CouplingPair::new(g, gate, geom()).unwrap()];
        assert!(matches!(
            CouplingSet::new(&c, bad),
            Err(CouplingError::NotAWire(_))
        ));

        let (w1, w2) = (wire(&c, "w1"), wire(&c, "w2"));
        let dup = vec![
            CouplingPair::new(w1, w2, geom()).unwrap(),
            CouplingPair::new(w2, w1, geom()).unwrap(),
        ];
        assert!(matches!(
            CouplingSet::new(&c, dup),
            Err(CouplingError::DuplicatePair(_, _))
        ));

        let tight = WirePairGeometry::new(80.0, 5.0, 0.03).unwrap();
        let colliding = vec![CouplingPair::new(w1, w2, tight).unwrap()];
        assert!(matches!(
            CouplingSet::new(&c, colliding),
            Err(CouplingError::PitchTooSmall { .. })
        ));
    }

    #[test]
    fn totals_are_consistent() {
        let c = circuit();
        let (w1, w2, w3) = (wire(&c, "w1"), wire(&c, "w2"), wire(&c, "w3"));
        let set = CouplingSet::new(
            &c,
            vec![
                CouplingPair::new(w1, w2, geom()).unwrap(),
                CouplingPair::new(w2, w3, geom()).unwrap(),
            ],
        )
        .unwrap();
        let sizes = c.uniform_sizes(1.0);
        let total = set.total_crosstalk(&c, &sizes);
        let parts = set.total_base_capacitance() + set.crosstalk_lhs(&c, &sizes);
        assert!((total - parts).abs() < 1e-12);
        // Linearized underestimates exact slightly.
        assert!(total <= set.total_physical_coupling(&c, &sizes) + 1e-12);
    }

    #[test]
    fn crosstalk_decreases_with_smaller_wires() {
        let c = circuit();
        let (w1, w2) = (wire(&c, "w1"), wire(&c, "w2"));
        let set = CouplingSet::new(&c, vec![CouplingPair::new(w1, w2, geom()).unwrap()]).unwrap();
        let big = set.total_crosstalk(&c, &c.uniform_sizes(5.0));
        let small = set.total_crosstalk(&c, &c.uniform_sizes(0.2));
        assert!(small < big);
    }

    #[test]
    fn delay_load_hits_both_wires() {
        let c = circuit();
        let (w1, w2) = (wire(&c, "w1"), wire(&c, "w2"));
        let set = CouplingSet::new(&c, vec![CouplingPair::new(w1, w2, geom()).unwrap()]).unwrap();
        let sizes = c.uniform_sizes(1.0);
        let load = set.delay_load_per_node(&c, &sizes);
        assert!(load[w1.index()] > 0.0);
        assert!(load[w2.index()] > 0.0);
        assert_eq!(load[w1.index()], load[w2.index()]);
        assert_eq!(load[c.node_by_name("g").unwrap().index()], 0.0);
    }

    #[test]
    fn theorem5_helper_sums() {
        let c = circuit();
        let (w1, w2, w3) = (wire(&c, "w1"), wire(&c, "w2"), wire(&c, "w3"));
        let p12 = CouplingPair::new(w1, w2, geom()).unwrap();
        let p23 = CouplingPair::new(w2, w3, geom()).unwrap();
        let chat = p12.linear_coefficient();
        let set = CouplingSet::new(&c, vec![p12, p23]).unwrap();
        let sizes = c.uniform_sizes(2.0);
        assert!((set.linear_coefficient_sum(w2) - 2.0 * chat).abs() < 1e-12);
        // The cached sums equal the neighbor-walk recomputation bitwise.
        for id in c.node_ids() {
            assert_eq!(
                set.linear_coefficient_sum(id),
                set.linear_coefficient_sum_uncached(id)
            );
        }
        assert!((set.weighted_neighbor_width(&c, w2, &sizes) - 2.0 * chat * 2.0).abs() < 1e-12);
    }

    #[test]
    fn group_helpers_restrict_to_in_group_pairs() {
        let c = circuit();
        let (w1, w2, w3) = (wire(&c, "w1"), wire(&c, "w2"), wire(&c, "w3"));
        let set = CouplingSet::new(
            &c,
            vec![
                CouplingPair::new(w1, w2, geom()).unwrap(),
                CouplingPair::new(w2, w3, geom()).unwrap(),
            ],
        )
        .unwrap();
        let sizes = c.uniform_sizes(1.5);

        // The full wire set reproduces the global totals.
        let all = [w1, w2, w3];
        assert_eq!(set.group_pair_indices(&all), vec![0, 1]);
        assert!(
            (set.group_crosstalk(&c, &sizes, &all) - set.total_crosstalk(&c, &sizes)).abs() < 1e-12
        );
        assert!((set.group_base_capacitance(&all) - set.total_base_capacitance()).abs() < 1e-12);
        assert!(
            (set.group_crosstalk_lhs(&c, &sizes, &all) - set.crosstalk_lhs(&c, &sizes)).abs()
                < 1e-12
        );

        // A sub-group only sees its own pair; w2's coefficient drops to the
        // single in-group neighbor.
        let sub = [w1, w2];
        assert_eq!(set.group_pair_indices(&sub), vec![0]);
        let sums = set.group_linear_sums(&sub);
        assert_eq!(sums.len(), 2);
        let w2_sum = sums.iter().find(|(id, _)| *id == w2).unwrap().1;
        assert!((w2_sum - set.linear_coefficient_sum(w2) / 2.0).abs() < 1e-12);
        // group value = constant + Σ a_i x_i for the linearized group model.
        let by_terms: f64 = set.group_base_capacitance(&sub)
            + sums
                .iter()
                .map(|&(id, a)| a * c.size_of(id, &sizes))
                .sum::<f64>();
        assert!((by_terms - set.group_crosstalk(&c, &sizes, &sub)).abs() < 1e-9);

        // A group with no internal pair contributes nothing.
        let lonely = [w1, w3];
        assert!(set.group_pair_indices(&lonely).is_empty());
        assert_eq!(set.group_crosstalk(&c, &sizes, &lonely), 0.0);
        assert!(set.group_linear_sums(&lonely).is_empty());
    }

    #[test]
    fn empty_set_behaves() {
        let c = circuit();
        let set = CouplingSet::empty(&c);
        assert!(set.is_empty());
        let sizes = c.uniform_sizes(1.0);
        assert_eq!(set.total_crosstalk(&c, &sizes), 0.0);
        assert_eq!(set.delay_load_per_node(&c, &sizes).iter().sum::<f64>(), 0.0);
        assert!(set.memory_bytes() > 0);
    }
}
