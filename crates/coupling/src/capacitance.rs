//! Per-pair coupling capacitance models.

use serde::{Deserialize, Serialize};

use ncgws_circuit::NodeId;

use crate::error::CouplingError;
use crate::posynomial::{exact_factor, truncated_factor};

/// Geometry of a pair of adjacent parallel wires (Figure 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirePairGeometry {
    /// Overlap length `l_ij` (µm).
    pub overlap_length: f64,
    /// Middle-to-middle distance `d_ij` (µm).
    pub distance: f64,
    /// Unit-length fringing capacitance `f̂_ij` between the wires (fF/µm).
    pub unit_fringing: f64,
}

impl WirePairGeometry {
    /// Creates a geometry description, validating all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidGeometry`] if any parameter is
    /// non-positive or non-finite.
    pub fn new(
        overlap_length: f64,
        distance: f64,
        unit_fringing: f64,
    ) -> Result<Self, CouplingError> {
        for (name, value) in [
            ("overlap_length", overlap_length),
            ("distance", distance),
            ("unit_fringing", unit_fringing),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(CouplingError::InvalidGeometry { name, value });
            }
        }
        Ok(WirePairGeometry {
            overlap_length,
            distance,
            unit_fringing,
        })
    }

    /// The size-independent coupling `~c_ij = f̂_ij · l_ij / d_ij` (fF).
    pub fn base_capacitance(&self) -> f64 {
        self.unit_fringing * self.overlap_length / self.distance
    }
}

/// A coupling capacitor between two adjacent wires, together with the
/// switching-similarity weight that turns physical coupling into effective
/// crosstalk (Equation 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CouplingPair {
    /// First wire (by convention the smaller node index).
    pub a: NodeId,
    /// Second wire.
    pub b: NodeId,
    /// Pair geometry.
    pub geometry: WirePairGeometry,
    /// Switching factor in `[0, 2]`: `0` for perfectly correlated switching
    /// (anti-Miller), `1` for a quiet neighbor, `2` for perfectly
    /// anti-correlated switching (Miller). Defaults to `1`.
    pub switching_factor: f64,
}

impl CouplingPair {
    /// Creates a coupling pair with a neutral switching factor.
    ///
    /// # Errors
    ///
    /// Returns an error if the two node identifiers are equal.
    pub fn new(a: NodeId, b: NodeId, geometry: WirePairGeometry) -> Result<Self, CouplingError> {
        if a == b {
            return Err(CouplingError::SelfCoupling(a));
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        Ok(CouplingPair {
            a,
            b,
            geometry,
            switching_factor: 1.0,
        })
    }

    /// Sets the switching factor (clamped into `[0, 2]`).
    pub fn with_switching_factor(mut self, factor: f64) -> Self {
        self.switching_factor = factor.clamp(0.0, 2.0);
        self
    }

    /// Returns the other wire of the pair, or `None` if `id` is not part of it.
    pub fn other(&self, id: NodeId) -> Option<NodeId> {
        if id == self.a {
            Some(self.b)
        } else if id == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// The size-independent coupling `~c_ij` (fF).
    pub fn base_capacitance(&self) -> f64 {
        self.geometry.base_capacitance()
    }

    /// The linear coefficient `ĉ_ij = ~c_ij / (2 d_ij)` of the `k = 2`
    /// posynomial model (fF per µm of total width).
    pub fn linear_coefficient(&self) -> f64 {
        self.base_capacitance() / (2.0 * self.geometry.distance)
    }

    /// The normalized width variable `x = (x_i + x_j) / (2 d_ij)`.
    pub fn normalized_width(&self, xa: f64, xb: f64) -> f64 {
        (xa + xb) / (2.0 * self.geometry.distance)
    }

    /// The exact physical coupling capacitance (Equation 2).
    ///
    /// # Panics
    ///
    /// Panics if the widths are so large that the wires collide
    /// (`(x_i + x_j)/2 ≥ d_ij`).
    pub fn exact_capacitance(&self, xa: f64, xb: f64) -> f64 {
        self.base_capacitance() * exact_factor(self.normalized_width(xa, xb))
    }

    /// The `k`-term posynomial approximation (Equation 3 generalized to any
    /// truncation order).
    pub fn truncated_capacitance(&self, xa: f64, xb: f64, k: usize) -> f64 {
        self.base_capacitance() * truncated_factor(self.normalized_width(xa, xb), k)
    }

    /// The linearized (`k = 2`) coupling capacitance
    /// `~c_ij + ĉ_ij · (x_i + x_j)` used by the optimizer's constraint.
    pub fn linearized_capacitance(&self, xa: f64, xb: f64) -> f64 {
        self.base_capacitance() + self.linear_coefficient() * (xa + xb)
    }

    /// Effective crosstalk contribution: the switching factor times the
    /// physical coupling (Equation 1), using the linearized model.
    pub fn effective_crosstalk(&self, xa: f64, xb: f64) -> f64 {
        self.switching_factor * self.linearized_capacitance(xa, xb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(distance: f64) -> CouplingPair {
        let geom = WirePairGeometry::new(100.0, distance, 0.03).unwrap();
        CouplingPair::new(NodeId::new(5), NodeId::new(3), geom).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(WirePairGeometry::new(0.0, 1.0, 1.0).is_err());
        assert!(WirePairGeometry::new(1.0, -1.0, 1.0).is_err());
        assert!(WirePairGeometry::new(1.0, 1.0, f64::NAN).is_err());
        assert!(WirePairGeometry::new(10.0, 2.0, 0.03).is_ok());
    }

    #[test]
    fn pair_orders_its_endpoints() {
        let p = pair(4.0);
        assert_eq!(p.a, NodeId::new(3));
        assert_eq!(p.b, NodeId::new(5));
        assert_eq!(p.other(NodeId::new(3)), Some(NodeId::new(5)));
        assert_eq!(p.other(NodeId::new(5)), Some(NodeId::new(3)));
        assert_eq!(p.other(NodeId::new(9)), None);
    }

    #[test]
    fn self_coupling_is_rejected() {
        let geom = WirePairGeometry::new(10.0, 2.0, 0.03).unwrap();
        assert!(matches!(
            CouplingPair::new(NodeId::new(4), NodeId::new(4), geom),
            Err(CouplingError::SelfCoupling(_))
        ));
    }

    #[test]
    fn base_capacitance_formula() {
        let p = pair(4.0);
        // ~c = 0.03 * 100 / 4 = 0.75 fF
        assert!((p.base_capacitance() - 0.75).abs() < 1e-12);
        // ĉ = ~c / (2d) = 0.75 / 8
        assert!((p.linear_coefficient() - 0.09375).abs() < 1e-12);
    }

    #[test]
    fn coupling_grows_with_width_and_shrinks_with_distance() {
        let p = pair(4.0);
        assert!(p.exact_capacitance(2.0, 2.0) > p.exact_capacitance(1.0, 1.0));
        let far = pair(8.0);
        assert!(far.exact_capacitance(1.0, 1.0) < p.exact_capacitance(1.0, 1.0));
    }

    #[test]
    fn linearized_matches_k2_truncation() {
        let p = pair(5.0);
        for &(xa, xb) in &[(0.5, 0.5), (1.0, 2.0), (0.1, 0.1)] {
            let lin = p.linearized_capacitance(xa, xb);
            let k2 = p.truncated_capacitance(xa, xb, 2);
            assert!((lin - k2).abs() < 1e-12);
        }
    }

    #[test]
    fn truncated_approaches_exact_as_k_grows() {
        let p = pair(10.0);
        let exact = p.exact_capacitance(2.0, 3.0);
        let mut last_err = f64::INFINITY;
        for k in 2..8 {
            let err = (exact - p.truncated_capacitance(2.0, 3.0, k)).abs();
            assert!(err <= last_err);
            last_err = err;
        }
        assert!(last_err / exact < 0.01);
    }

    #[test]
    fn switching_factor_scales_crosstalk() {
        let p = pair(4.0);
        let quiet = p.effective_crosstalk(1.0, 1.0);
        let miller = p.with_switching_factor(2.0).effective_crosstalk(1.0, 1.0);
        let anti = p.with_switching_factor(0.0).effective_crosstalk(1.0, 1.0);
        assert!((miller - 2.0 * quiet).abs() < 1e-12);
        assert_eq!(anti, 0.0);
        // Clamping.
        assert_eq!(p.with_switching_factor(5.0).switching_factor, 2.0);
        assert_eq!(p.with_switching_factor(-1.0).switching_factor, 0.0);
    }
}
