//! The truncated geometric series of Theorem 1.
//!
//! For `|x| < 1`, `1/(1−x) = Σ_{n≥0} xⁿ`. Truncating after `k` terms gives a
//! posynomial approximation whose relative error is exactly `xᵏ` (for
//! `0 ≤ x < 1`). The paper uses `k = 2` (a linear model) and notes that at
//! `x = 0.25` the error ratio is below 6.3 %, 1.6 %, 0.4 % and 0.1 % for
//! `k = 2, 3, 4, 5`.

/// The exact factor `1 / (1 − x)`.
///
/// # Panics
///
/// Panics if `x ≥ 1` (the wires would collide) or `x` is not finite.
pub fn exact_factor(x: f64) -> f64 {
    assert!(
        x.is_finite() && x < 1.0,
        "exact_factor requires x < 1, got {x}"
    );
    1.0 / (1.0 - x)
}

/// The `k`-term truncation `Σ_{n=0}^{k-1} xⁿ` of the geometric series.
///
/// `k = 0` returns 0; `k = 1` returns 1 (size-independent coupling);
/// `k = 2` is the linear model used throughout the paper.
pub fn truncated_factor(x: f64, k: usize) -> f64 {
    let mut sum = 0.0;
    let mut term = 1.0;
    for _ in 0..k {
        sum += term;
        term *= x;
    }
    sum
}

/// The relative truncation error `(f(x) − f̂(x)) / f(x)`.
///
/// By Theorem 1 of the paper this equals `xᵏ` for `0 ≤ x < 1`.
pub fn truncation_error_ratio(x: f64, k: usize) -> f64 {
    x.powi(k as i32)
}

/// Convenience: the error ratios for `k = 2..=5` at a given `x`, matching the
/// small table in the text of the paper.
pub fn paper_error_table(x: f64) -> [(usize, f64); 4] {
    [
        (2, truncation_error_ratio(x, 2)),
        (3, truncation_error_ratio(x, 3)),
        (4, truncation_error_ratio(x, 4)),
        (5, truncation_error_ratio(x, 5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_converges_to_exact() {
        for &x in &[0.0, 0.1, 0.25, 0.5, 0.9] {
            let exact = exact_factor(x);
            let approx = truncated_factor(x, 400);
            assert!((exact - approx).abs() / exact < 1e-9, "x={x}");
        }
    }

    #[test]
    fn theorem1_error_ratio_is_x_to_the_k() {
        for &x in &[0.05, 0.1, 0.25, 0.5] {
            for k in 1..8 {
                let exact = exact_factor(x);
                let approx = truncated_factor(x, k);
                let measured = (exact - approx) / exact;
                assert!(
                    (measured - truncation_error_ratio(x, k)).abs() < 1e-12,
                    "x={x} k={k}: measured {measured}"
                );
            }
        }
    }

    #[test]
    fn paper_numbers_at_x_quarter() {
        // "for the case x = 0.25, the error ratio is less than 6.3%, 1.6%,
        //  0.4%, and 0.1% when k is 2, 3, 4, and 5 respectively."
        let table = paper_error_table(0.25);
        assert!(table[0].1 < 0.063 && table[0].1 > 0.06);
        assert!(table[1].1 < 0.016);
        assert!(table[2].1 < 0.004);
        assert!(table[3].1 < 0.001);
    }

    #[test]
    fn k2_is_linear() {
        for &x in &[0.0, 0.2, 0.7] {
            assert!((truncated_factor(x, 2) - (1.0 + x)).abs() < 1e-15);
        }
    }

    #[test]
    fn edge_truncations() {
        assert_eq!(truncated_factor(0.3, 0), 0.0);
        assert_eq!(truncated_factor(0.3, 1), 1.0);
    }

    #[test]
    #[should_panic]
    fn exact_factor_rejects_collision() {
        let _ = exact_factor(1.0);
    }

    #[test]
    fn approximation_underestimates_for_positive_x() {
        // The truncation drops positive terms, so it is always optimistic
        // (never larger than the exact coupling) — the optimizer therefore
        // treats the worst case through the error bound, not by accident.
        for &x in &[0.1, 0.3, 0.6] {
            for k in 1..6 {
                assert!(truncated_factor(x, k) <= exact_factor(x));
            }
        }
    }
}
