//! Error type for coupling-model construction.

use std::fmt;

use ncgws_circuit::NodeId;

/// Errors produced while building a [`CouplingSet`](crate::CouplingSet).
#[derive(Debug, Clone, PartialEq)]
pub enum CouplingError {
    /// A coupling pair references a node that is not a wire.
    NotAWire(NodeId),
    /// A coupling pair couples a wire with itself.
    SelfCoupling(NodeId),
    /// The same unordered pair was supplied twice.
    DuplicatePair(NodeId, NodeId),
    /// A geometry parameter was non-positive or non-finite.
    InvalidGeometry {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The wires could collide: the maximum allowed widths do not fit in the
    /// pitch (`(U_i + U_j)/2 ≥ d_ij`), so the coupling model would diverge.
    PitchTooSmall {
        /// First wire.
        a: NodeId,
        /// Second wire.
        b: NodeId,
        /// Middle-to-middle distance.
        distance: f64,
    },
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouplingError::NotAWire(id) => write!(f, "node {id} is not a wire"),
            CouplingError::SelfCoupling(id) => write!(f, "wire {id} cannot couple with itself"),
            CouplingError::DuplicatePair(a, b) => {
                write!(f, "coupling pair ({a}, {b}) supplied more than once")
            }
            CouplingError::InvalidGeometry { name, value } => {
                write!(
                    f,
                    "coupling geometry parameter {name} must be positive and finite, got {value}"
                )
            }
            CouplingError::PitchTooSmall { a, b, distance } => write!(
                f,
                "wires {a} and {b} at pitch {distance} could overlap at maximum width"
            ),
        }
    }
}

impl std::error::Error for CouplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = CouplingError::PitchTooSmall {
            a: NodeId::new(1),
            b: NodeId::new(2),
            distance: 3.0,
        };
        assert!(e.to_string().contains("pitch"));
        let e = CouplingError::InvalidGeometry {
            name: "distance",
            value: -1.0,
        };
        assert!(e.to_string().contains("distance"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CouplingError>();
    }
}
