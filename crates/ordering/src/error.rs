//! Error type for ordering-problem construction.

use std::fmt;

/// Errors produced while building or solving a Switching-Similarity problem.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderingError {
    /// The weight matrix does not match the number of wires.
    WeightShapeMismatch {
        /// Number of wires.
        wires: usize,
        /// Length of the provided weight matrix.
        weights: usize,
    },
    /// A weight was negative or not finite.
    InvalidWeight {
        /// Row index.
        i: usize,
        /// Column index.
        j: usize,
        /// The rejected value.
        value: f64,
    },
    /// The weight matrix is not symmetric.
    AsymmetricWeight {
        /// Row index.
        i: usize,
        /// Column index.
        j: usize,
    },
    /// The exact solver was asked to solve a problem beyond its size limit.
    TooLargeForExact {
        /// Number of wires in the problem.
        wires: usize,
        /// Maximum size the exact solver accepts.
        limit: usize,
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::WeightShapeMismatch { wires, weights } => {
                write!(
                    f,
                    "weight matrix has {weights} entries but {wires} wires need {}",
                    wires * wires
                )
            }
            OrderingError::InvalidWeight { i, j, value } => {
                write!(
                    f,
                    "weight ({i}, {j}) must be finite and non-negative, got {value}"
                )
            }
            OrderingError::AsymmetricWeight { i, j } => {
                write!(f, "weight matrix is not symmetric at ({i}, {j})")
            }
            OrderingError::TooLargeForExact { wires, limit } => {
                write!(
                    f,
                    "exact ordering supports at most {limit} wires, got {wires}"
                )
            }
        }
    }
}

impl std::error::Error for OrderingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        let e = OrderingError::TooLargeForExact {
            wires: 30,
            limit: 16,
        };
        assert!(e.to_string().contains("30"));
        let e = OrderingError::WeightShapeMismatch {
            wires: 3,
            weights: 4,
        };
        assert!(e.to_string().contains("9"));
    }
}
