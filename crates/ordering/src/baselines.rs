//! Baseline orderings for comparisons and ablations.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::problem::{SsProblem, WireOrdering};

/// The ordering that keeps the wires in their given (netlist) order —
/// what a router oblivious to switching similarity would produce.
pub fn identity_ordering(problem: &SsProblem) -> WireOrdering {
    problem.make_ordering((0..problem.len()).collect())
}

/// A uniformly random ordering (reproducible from `seed`).
pub fn random_ordering(problem: &SsProblem, seed: u64) -> WireOrdering {
    let mut positions: Vec<usize> = (0..problem.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    positions.shuffle(&mut rng);
    problem.make_ordering(positions)
}

/// Nearest-neighbor greedy ordering tried from **every** start wire, keeping
/// the best result. Strictly stronger (and `n` times slower) than WOSS's
/// single minimum-edge start; used as an ablation point.
pub fn best_start_nearest_neighbor(problem: &SsProblem) -> WireOrdering {
    let n = problem.len();
    if n <= 1 {
        return identity_ordering(problem);
    }
    let mut best: Option<WireOrdering> = None;
    for start in 0..n {
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        placed[start] = true;
        order.push(start);
        for _ in 1..n {
            let tail = *order.last().expect("non-empty");
            let mut next = None;
            let mut next_w = f64::INFINITY;
            for (candidate, &taken) in placed.iter().enumerate() {
                if !taken && problem.weight(tail, candidate) < next_w {
                    next_w = problem.weight(tail, candidate);
                    next = Some(candidate);
                }
            }
            let chosen = next.expect("unplaced wire exists");
            placed[chosen] = true;
            order.push(chosen);
        }
        let candidate = problem.make_ordering(order);
        if best.as_ref().is_none_or(|b| candidate.cost() < b.cost()) {
            best = Some(candidate);
        }
    }
    best.expect("n >= 2 produces at least one candidate")
}

/// Average cost of `samples` random orderings — the expected effective
/// loading of a similarity-oblivious router, used for reporting improvement
/// factors.
pub fn average_random_cost(problem: &SsProblem, samples: usize, seed: u64) -> f64 {
    if problem.len() < 2 || samples == 0 {
        return 0.0;
    }
    (0..samples)
        .map(|k| random_ordering(problem, seed.wrapping_add(k as u64)).cost())
        .sum::<f64>()
        / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_ordering;
    use crate::woss::woss;
    use ncgws_circuit::NodeId;

    fn problem(n: usize) -> SsProblem {
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    weights[i * n + j] = (((i * 5 + j * 3) % 7) + 1) as f64;
                }
            }
        }
        // Symmetrize.
        for i in 0..n {
            for j in 0..i {
                let w = weights[j * n + i];
                weights[i * n + j] = w;
            }
        }
        SsProblem::from_weights((0..n).map(NodeId::new).collect(), weights).unwrap()
    }

    #[test]
    fn identity_is_the_trivial_permutation() {
        let p = problem(5);
        let o = identity_ordering(&p);
        assert_eq!(o.positions(), &[0, 1, 2, 3, 4]);
        assert!(o.is_permutation_of(&p));
    }

    #[test]
    fn random_is_reproducible_and_a_permutation() {
        let p = problem(8);
        let a = random_ordering(&p, 1);
        let b = random_ordering(&p, 1);
        let c = random_ordering(&p, 2);
        assert_eq!(a, b);
        assert_ne!(a.positions(), c.positions());
        assert!(a.is_permutation_of(&p));
    }

    #[test]
    fn best_start_nn_is_at_least_as_good_as_woss_start() {
        let p = problem(9);
        let nn = best_start_nearest_neighbor(&p);
        let exact = exact_ordering(&p).unwrap();
        assert!(nn.is_permutation_of(&p));
        assert!(exact.cost() <= nn.cost() + 1e-9);
        // And it should not be worse than a random ordering on average.
        let avg = average_random_cost(&p, 20, 3);
        assert!(nn.cost() <= avg + 1e-9);
    }

    #[test]
    fn woss_beats_random_on_average_for_structured_similarity() {
        // Two clusters of mutually similar wires.
        let n = 10;
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    weights[i * n + j] = if (i < 5) == (j < 5) { 0.1 } else { 1.9 };
                }
            }
        }
        let p = SsProblem::from_weights((0..n).map(NodeId::new).collect(), weights).unwrap();
        let greedy = woss(&p);
        let avg = average_random_cost(&p, 50, 11);
        assert!(
            greedy.cost() < avg,
            "woss {} vs random {avg}",
            greedy.cost()
        );
    }

    #[test]
    fn degenerate_sizes() {
        let p = problem(1);
        assert_eq!(best_start_nearest_neighbor(&p).len(), 1);
        assert_eq!(average_random_cost(&p, 10, 0), 0.0);
    }
}
