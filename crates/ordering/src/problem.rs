//! The Switching-Similarity problem and its solutions.

use ncgws_circuit::NodeId;
use ncgws_waveform::SimilarityMatrix;
use serde::{Deserialize, Serialize};

use crate::error::OrderingError;

/// An instance of the Switching-Similarity (SS) problem: the complete graph
/// `K_n` over `n` wires with edge weights `1 − similarity(i, j)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsProblem {
    nodes: Vec<NodeId>,
    /// Row-major `n × n` symmetric weight matrix with a zero diagonal.
    weights: Vec<f64>,
}

impl SsProblem {
    /// Builds the problem from a similarity matrix (weights become
    /// `1 − similarity`).
    pub fn from_similarity(matrix: &SimilarityMatrix) -> Self {
        let n = matrix.len();
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                weights[i * n + j] = if i == j { 0.0 } else { matrix.weight(i, j) };
            }
        }
        SsProblem {
            nodes: matrix.nodes().to_vec(),
            weights,
        }
    }

    /// Builds the problem from explicit weights (row-major `n × n`).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix has the wrong shape, contains negative
    /// or non-finite weights, or is not symmetric.
    pub fn from_weights(nodes: Vec<NodeId>, weights: Vec<f64>) -> Result<Self, OrderingError> {
        let n = nodes.len();
        if weights.len() != n * n {
            return Err(OrderingError::WeightShapeMismatch {
                wires: n,
                weights: weights.len(),
            });
        }
        for i in 0..n {
            for j in 0..n {
                let w = weights[i * n + j];
                if !w.is_finite() || w < 0.0 {
                    return Err(OrderingError::InvalidWeight { i, j, value: w });
                }
                if (w - weights[j * n + i]).abs() > 1e-9 {
                    return Err(OrderingError::AsymmetricWeight { i, j });
                }
            }
        }
        Ok(SsProblem { nodes, weights })
    }

    /// Number of wires `n`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for the empty problem.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The wires, in the position order used by `weight`.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edge weight between positions `i` and `j`.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.nodes.len() + j]
    }

    /// Total effective loading of an ordering given as positions into
    /// [`nodes`](Self::nodes): `Σ_i weight(order[i], order[i+1])`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation-sized slice of valid positions.
    pub fn ordering_cost(&self, order: &[usize]) -> f64 {
        assert_eq!(order.len(), self.len(), "ordering must cover every wire");
        order.windows(2).map(|w| self.weight(w[0], w[1])).sum()
    }

    /// Wraps a position ordering into a [`WireOrdering`] carrying node ids
    /// and cost.
    pub fn make_ordering(&self, positions: Vec<usize>) -> WireOrdering {
        let cost = if positions.len() >= 2 {
            self.ordering_cost(&positions)
        } else {
            0.0
        };
        let sequence = positions.iter().map(|&p| self.nodes[p]).collect();
        WireOrdering {
            positions,
            sequence,
            cost,
        }
    }
}

/// A solution of the SS problem: a linear track order of the wires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOrdering {
    /// Ordering as positions into the problem's node list.
    positions: Vec<usize>,
    /// Ordering as node identifiers.
    sequence: Vec<NodeId>,
    /// Total effective loading `Σ weight(w_i, w_{i+1})`.
    cost: f64,
}

impl WireOrdering {
    /// The ordering as positions into [`SsProblem::nodes`].
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The ordering as node identifiers.
    pub fn sequence(&self) -> &[NodeId] {
        &self.sequence
    }

    /// The total effective loading of this ordering.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of wires ordered.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` for the empty ordering.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Returns `true` if this ordering is a permutation of the problem's wires.
    pub fn is_permutation_of(&self, problem: &SsProblem) -> bool {
        if self.positions.len() != problem.len() {
            return false;
        }
        let mut seen = vec![false; problem.len()];
        for &p in &self.positions {
            if p >= problem.len() || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (10..10 + n).map(NodeId::new).collect()
    }

    #[test]
    fn from_weights_validates() {
        let n = nodes(2);
        assert!(SsProblem::from_weights(n.clone(), vec![0.0; 3]).is_err());
        assert!(SsProblem::from_weights(n.clone(), vec![0.0, -1.0, -1.0, 0.0]).is_err());
        assert!(SsProblem::from_weights(n.clone(), vec![0.0, 1.0, 2.0, 0.0]).is_err());
        let ok = SsProblem::from_weights(n, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.weight(0, 1), 1.0);
    }

    #[test]
    fn ordering_cost_sums_consecutive_weights() {
        let p = SsProblem::from_weights(
            nodes(3),
            vec![
                0.0, 1.0, 4.0, //
                1.0, 0.0, 2.0, //
                4.0, 2.0, 0.0,
            ],
        )
        .unwrap();
        assert_eq!(p.ordering_cost(&[0, 1, 2]), 3.0);
        assert_eq!(p.ordering_cost(&[0, 2, 1]), 6.0);
        let o = p.make_ordering(vec![1, 0, 2]);
        assert_eq!(o.cost(), 5.0);
        assert!(o.is_permutation_of(&p));
        assert_eq!(o.sequence()[0], NodeId::new(11));
    }

    #[test]
    fn from_similarity_uses_one_minus() {
        use ncgws_waveform::SimilarityMatrix;
        let ids = nodes(2);
        let m = SimilarityMatrix::from_values(ids.clone(), vec![1.0, 0.4, 0.4, 1.0]);
        let p = SsProblem::from_similarity(&m);
        assert!((p.weight(0, 1) - 0.6).abs() < 1e-12);
        assert_eq!(p.weight(0, 0), 0.0);
    }

    #[test]
    fn permutation_check_catches_duplicates() {
        let p = SsProblem::from_weights(nodes(3), vec![0.0; 9]).unwrap();
        let bad = WireOrdering {
            positions: vec![0, 0, 1],
            sequence: vec![NodeId::new(10), NodeId::new(10), NodeId::new(11)],
            cost: 0.0,
        };
        assert!(!bad.is_permutation_of(&p));
    }
}
