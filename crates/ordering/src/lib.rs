//! Wire ordering for the Switching-Similarity (SS) problem — stage 1 of the
//! paper's two-stage crosstalk minimization strategy (Section 3.2).
//!
//! Given `n` wires that will share a routing region and the pairwise
//! switching similarity of their signals, the SS problem asks for a linear
//! ordering (track assignment) `<w_1, …, w_n>` minimizing the total effective
//! loading `Σ_i weight(w_i, w_{i+1})`, where `weight(i, j) = 1 − similarity(i, j)`.
//! Placing wires that switch alike next to each other exploits the
//! anti-Miller effect and reduces effective crosstalk before any sizing
//! happens.
//!
//! The problem is NP-hard (the paper reduces MCWO to it and also shows no
//! constant-factor approximation exists unless P = NP), so the paper proposes
//! the greedy **WOSS** heuristic (Figure 7). This crate implements:
//!
//! * [`SsProblem`] — the complete graph `K_n` with `1 − similarity` weights;
//! * [`woss()`] — the paper's heuristic;
//! * [`exact_ordering`] — a Held–Karp dynamic program usable up to ~16 wires,
//!   as an optimality reference for tests and ablations;
//! * [`baselines`] — identity / random / best-start nearest-neighbor
//!   orderings for comparisons;
//! * [`WireOrdering`] / [`adjacency`] — the resulting track order, the
//!   adjacent pairs it induces and the paper's `N(i)` / `I(i)` maps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adjacency;
pub mod baselines;
pub mod error;
pub mod exact;
pub mod problem;
pub mod woss;

pub use adjacency::Adjacency;
pub use error::OrderingError;
pub use exact::exact_ordering;
pub use problem::{SsProblem, WireOrdering};
pub use woss::woss;
