//! The WOSS heuristic (Figure 7 of the paper).

use crate::problem::{SsProblem, WireOrdering};

/// Wire Ordering for the Switching-Similarity problem.
///
/// The heuristic follows the paper exactly:
///
/// 1. start with the minimum-weight edge `(w_1, w_2)`;
/// 2. repeatedly extend the ordering at its tail: among all wires not yet
///    placed, append the one with the minimum weight to the current last wire.
///
/// The run time is `O(n²)` for `n` wires (a depth-first greedy sweep of the
/// complete graph `K_n`).
///
/// Degenerate inputs: an empty problem yields an empty ordering, a single
/// wire yields the trivial ordering.
pub fn woss(problem: &SsProblem) -> WireOrdering {
    let n = problem.len();
    if n == 0 {
        return problem.make_ordering(Vec::new());
    }
    if n == 1 {
        return problem.make_ordering(vec![0]);
    }

    // A1: the minimum-weighted edge starts the ordering.
    let mut best = (0usize, 1usize);
    let mut best_w = problem.weight(0, 1);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = problem.weight(i, j);
            if w < best_w {
                best_w = w;
                best = (i, j);
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    order.push(best.0);
    order.push(best.1);
    placed[best.0] = true;
    placed[best.1] = true;

    // A2: extend greedily from the current tail.
    for _ in 2..n {
        let tail = *order.last().expect("ordering is non-empty");
        let mut next = None;
        let mut next_w = f64::INFINITY;
        for (candidate, &taken) in placed.iter().enumerate() {
            if taken {
                continue;
            }
            let w = problem.weight(tail, candidate);
            if w < next_w {
                next_w = w;
                next = Some(candidate);
            }
        }
        let chosen = next.expect("an unplaced wire always exists inside the loop");
        placed[chosen] = true;
        order.push(chosen);
    }

    problem.make_ordering(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::identity_ordering;
    use ncgws_circuit::NodeId;

    fn problem(weights: Vec<f64>) -> SsProblem {
        let n = (weights.len() as f64).sqrt() as usize;
        let nodes = (0..n).map(|i| NodeId::new(100 + i)).collect();
        SsProblem::from_weights(nodes, weights).unwrap()
    }

    #[test]
    fn empty_and_singleton() {
        let p = problem(vec![]);
        assert!(woss(&p).is_empty());
        let p1 = problem(vec![0.0]);
        let o = woss(&p1);
        assert_eq!(o.len(), 1);
        assert_eq!(o.cost(), 0.0);
    }

    #[test]
    fn starts_from_minimum_edge() {
        // Edge (1,2) has the smallest weight.
        let p = problem(vec![
            0.0, 5.0, 7.0, //
            5.0, 0.0, 1.0, //
            7.0, 1.0, 0.0,
        ]);
        let o = woss(&p);
        let pos = o.positions();
        assert!(
            (pos[0] == 1 && pos[1] == 2) || (pos[0] == 2 && pos[1] == 1),
            "ordering {pos:?} must start with the minimum edge"
        );
        assert!(o.is_permutation_of(&p));
    }

    #[test]
    fn finds_the_obvious_chain() {
        // Weights encode a path 0-1-2-3 with cheap consecutive edges and
        // expensive everything else.
        let w = |i: usize, j: usize| -> f64 {
            if i.abs_diff(j) == 1 {
                0.1
            } else if i == j {
                0.0
            } else {
                10.0
            }
        };
        let mut weights = vec![0.0; 16];
        for i in 0..4 {
            for j in 0..4 {
                weights[i * 4 + j] = w(i, j);
            }
        }
        let p = problem(weights);
        let o = woss(&p);
        assert!((o.cost() - 0.3).abs() < 1e-12, "cost {}", o.cost());
        // Every adjacent pair in the result must be a consecutive pair of the chain.
        for pair in o.positions().windows(2) {
            assert_eq!(pair[0].abs_diff(pair[1]), 1, "sequence {:?}", o.positions());
        }
    }

    #[test]
    fn never_worse_than_identity_on_structured_inputs() {
        // A block-structured weight matrix: wires in the same block are similar.
        let n = 8;
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                weights[i * n + j] = if (i < 4) == (j < 4) { 0.2 } else { 1.8 };
            }
        }
        // Interleave blocks in the node order so identity is bad.
        let order_map = [0usize, 4, 1, 5, 2, 6, 3, 7];
        let mut shuffled = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                shuffled[i * n + j] = weights[order_map[i] * n + order_map[j]];
            }
        }
        let p = problem(shuffled);
        let greedy = woss(&p);
        let base = identity_ordering(&p);
        assert!(greedy.cost() <= base.cost());
        // The optimum keeps the two blocks contiguous: cost 6*0.2 + 1*1.8.
        assert!((greedy.cost() - (6.0 * 0.2 + 1.8)).abs() < 1e-9);
    }

    #[test]
    fn result_is_always_a_permutation() {
        for n in 2..10 {
            let mut weights = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        weights[i * n + j] = ((i * 31 + j * 17) % 13) as f64 / 13.0;
                        weights[j * n + i] = weights[i * n + j];
                    }
                }
            }
            // Symmetrize deterministically.
            for i in 0..n {
                for j in 0..i {
                    let w = weights[j * n + i];
                    weights[i * n + j] = w;
                }
            }
            let p = problem(weights);
            let o = woss(&p);
            assert!(o.is_permutation_of(&p), "n={n}");
        }
    }
}
