//! Adjacency derived from a track ordering: the paper's `N(i)` and `I(i)`.

use std::collections::BTreeMap;

use ncgws_circuit::NodeId;
use serde::{Deserialize, Serialize};

use crate::problem::WireOrdering;

/// The adjacency relationship induced by assigning ordered wires to
/// neighboring tracks: wire `k` is adjacent to wires `k−1` and `k+1` of the
/// ordering.
///
/// * `N(i)` — the neighborhood of wire `i` (its adjacent wires),
/// * `I(i)` — the *dominating index*: adjacent wires with a node index
///   greater than `i`, so that `Σ_{i∈W} Σ_{j∈I(i)}` visits each adjacent pair
///   exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    neighbors: BTreeMap<NodeId, Vec<NodeId>>,
}

impl Adjacency {
    /// Builds the adjacency from one or more track orderings (one per
    /// routing channel). Wires in different channels are never adjacent.
    pub fn from_orderings<'a>(orderings: impl IntoIterator<Item = &'a WireOrdering>) -> Self {
        let mut neighbors: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for ordering in orderings {
            let seq = ordering.sequence();
            for pair in seq.windows(2) {
                neighbors.entry(pair[0]).or_default().push(pair[1]);
                neighbors.entry(pair[1]).or_default().push(pair[0]);
            }
            if seq.len() == 1 {
                neighbors.entry(seq[0]).or_default();
            }
        }
        Adjacency { neighbors }
    }

    /// The neighborhood `N(i)`.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.neighbors.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The dominating index `I(i)`: adjacent wires with a larger node index.
    pub fn dominating(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(id)
            .iter()
            .copied()
            .filter(move |&other| other > id)
    }

    /// All adjacent pairs `(i, j)` with `i < j`, each exactly once.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for (&id, neigh) in &self.neighbors {
            for &other in neigh {
                if other > id {
                    pairs.push((id, other));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Number of wires that have at least one neighbor entry.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns `true` if no wire has a neighbor.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SsProblem;

    fn ordering(ids: &[usize]) -> WireOrdering {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId::new(i)).collect();
        let n = nodes.len();
        let p = SsProblem::from_weights(nodes, vec![0.0; n * n]).unwrap();
        p.make_ordering((0..n).collect())
    }

    #[test]
    fn paper_example_neighborhoods() {
        // Track assignment <5, 7, 4, 8> from Figure 6 of the paper:
        // N(5)={7}, N(7)={5,4}, N(4)={7,8}, N(8)={4};
        // I(5)={7}, I(7)={}, I(4)={7,8}∩(>4)={7,8}→{7,8}? The paper lists I(4)={8}
        // because 7 < 4 is false — node indices: I(4) = adjacent wires with
        // index greater than 4 = {7, 8}. The paper's I(4)={8} uses its own
        // wire numbering; with ours both 7 and 8 qualify.
        let o = ordering(&[5, 7, 4, 8]);
        let adj = Adjacency::from_orderings([&o]);
        assert_eq!(adj.neighbors(NodeId::new(5)), &[NodeId::new(7)]);
        let n7: Vec<_> = adj.neighbors(NodeId::new(7)).to_vec();
        assert!(n7.contains(&NodeId::new(5)) && n7.contains(&NodeId::new(4)));
        assert_eq!(adj.neighbors(NodeId::new(8)), &[NodeId::new(4)]);
        // I(5) = {7}, I(7) = {} (no neighbor has a larger index than 7 except… 5<7, 4<7).
        assert_eq!(
            adj.dominating(NodeId::new(5)).collect::<Vec<_>>(),
            vec![NodeId::new(7)]
        );
        assert!(adj
            .dominating(NodeId::new(7))
            .collect::<Vec<_>>()
            .is_empty());
        // Every adjacent pair appears exactly once across all I(i).
        let total: usize = [4, 5, 7, 8]
            .into_iter()
            .map(|i| adj.dominating(NodeId::new(i)).count())
            .sum();
        assert_eq!(total, adj.pairs().len());
        assert_eq!(adj.pairs().len(), 3);
    }

    #[test]
    fn channels_do_not_mix() {
        let a = ordering(&[1, 2]);
        let b = ordering(&[10, 11]);
        let adj = Adjacency::from_orderings([&a, &b]);
        assert_eq!(adj.pairs().len(), 2);
        assert!(adj.neighbors(NodeId::new(2)).contains(&NodeId::new(1)));
        assert!(!adj.neighbors(NodeId::new(2)).contains(&NodeId::new(10)));
    }

    #[test]
    fn single_wire_channel_has_no_pairs() {
        let a = ordering(&[42]);
        let adj = Adjacency::from_orderings([&a]);
        assert!(adj.neighbors(NodeId::new(42)).is_empty());
        assert!(adj.pairs().is_empty());
        assert_eq!(adj.len(), 1);
    }
}
