//! Exact minimum-cost ordering by Held–Karp dynamic programming.
//!
//! The SS problem is the minimum-weight Hamiltonian *path* problem on the
//! complete graph `K_n`, which the Held–Karp dynamic program solves in
//! `O(2ⁿ · n²)` time and `O(2ⁿ · n)` memory. That is only practical for a
//! handful of wires, but it gives tests and ablation benches an optimality
//! reference for the WOSS heuristic.

use crate::error::OrderingError;
use crate::problem::{SsProblem, WireOrdering};

/// Largest problem size accepted by [`exact_ordering`].
pub const EXACT_LIMIT: usize = 16;

/// Computes a minimum-total-effective-loading ordering exactly.
///
/// # Errors
///
/// Returns [`OrderingError::TooLargeForExact`] if the problem has more than
/// [`EXACT_LIMIT`] wires.
pub fn exact_ordering(problem: &SsProblem) -> Result<WireOrdering, OrderingError> {
    let n = problem.len();
    if n > EXACT_LIMIT {
        return Err(OrderingError::TooLargeForExact {
            wires: n,
            limit: EXACT_LIMIT,
        });
    }
    if n == 0 {
        return Ok(problem.make_ordering(Vec::new()));
    }
    if n == 1 {
        return Ok(problem.make_ordering(vec![0]));
    }

    let full: usize = (1usize << n) - 1;
    // dp[mask][last] = minimum cost of a path visiting `mask` and ending at `last`.
    let mut dp = vec![vec![f64::INFINITY; n]; 1 << n];
    let mut parent = vec![vec![usize::MAX; n]; 1 << n];
    for start in 0..n {
        dp[1 << start][start] = 0.0;
    }
    for mask in 1..=full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cost = dp[mask][last];
            if !cost.is_finite() {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let new_mask = mask | (1 << next);
                let new_cost = cost + problem.weight(last, next);
                if new_cost < dp[new_mask][next] {
                    dp[new_mask][next] = new_cost;
                    parent[new_mask][next] = last;
                }
            }
        }
    }

    // Best endpoint of the full path.
    let mut best_last = 0;
    for last in 1..n {
        if dp[full][last] < dp[full][best_last] {
            best_last = last;
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    let mut last = best_last;
    while last != usize::MAX {
        order.push(last);
        let prev = parent[mask][last];
        mask &= !(1 << last);
        last = prev;
    }
    order.reverse();
    Ok(problem.make_ordering(order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::woss::woss;
    use ncgws_circuit::NodeId;

    fn problem(n: usize, f: impl Fn(usize, usize) -> f64) -> SsProblem {
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let w = f(i.min(j), i.max(j));
                    weights[i * n + j] = w;
                }
            }
        }
        let nodes = (0..n).map(NodeId::new).collect();
        SsProblem::from_weights(nodes, weights).unwrap()
    }

    #[test]
    fn refuses_oversized_problems() {
        let p = problem(EXACT_LIMIT + 1, |_, _| 1.0);
        assert!(matches!(
            exact_ordering(&p),
            Err(OrderingError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn trivial_sizes() {
        let p0 = problem(0, |_, _| 0.0);
        assert!(exact_ordering(&p0).unwrap().is_empty());
        let p1 = problem(1, |_, _| 0.0);
        assert_eq!(exact_ordering(&p1).unwrap().len(), 1);
        let p2 = problem(2, |_, _| 3.0);
        let o = exact_ordering(&p2).unwrap();
        assert_eq!(o.cost(), 3.0);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use std::collections::BTreeSet;
        // Deterministic pseudo-random weights.
        for n in 3..=7usize {
            let p = problem(n, |i, j| ((i * 7 + j * 13) % 11) as f64 + 0.5);
            let exact = exact_ordering(&p).unwrap();
            // Brute force over all permutations.
            let mut best = f64::INFINITY;
            let mut perm: Vec<usize> = (0..n).collect();
            permutohedron_heap(&mut perm, &mut |order: &[usize]| {
                best = best.min(p.ordering_cost(order));
            });
            assert!((exact.cost() - best).abs() < 1e-9, "n={n}");
            // And the result must be a permutation.
            let set: BTreeSet<usize> = exact.positions().iter().copied().collect();
            assert_eq!(set.len(), n);
        }
    }

    /// Minimal Heap's-algorithm permutation visitor (test helper).
    fn permutohedron_heap(items: &mut [usize], visit: &mut impl FnMut(&[usize])) {
        let n = items.len();
        let mut c = vec![0usize; n];
        visit(items);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    items.swap(0, i);
                } else {
                    items.swap(c[i], i);
                }
                visit(items);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn woss_is_never_better_than_exact() {
        for n in 3..=9usize {
            let p = problem(n, |i, j| (((i + 1) * (j + 2) * 31) % 17) as f64 / 4.0);
            let heur = woss(&p);
            let exact = exact_ordering(&p).unwrap();
            assert!(exact.cost() <= heur.cost() + 1e-9, "n={n}");
        }
    }
}
