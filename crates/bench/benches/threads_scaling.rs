//! Thread-count scaling of the level-parallel inner loop
//! (`ParallelPolicy::Level`) on the *wide* XL synthetic tier.
//!
//! Each measurement is a full stage-2 sizing run (fixed OGWS iteration
//! budget, adaptive solve schedule, one prepared ordering, one reused
//! engine), so the timing covers everything the level grid distributes:
//! fused LRS sweeps, timing evaluation, the channel-sharded coupling
//! scatter, the subgradient update and the flow projection. The wide tier
//! (`xl_wide_spec`, logarithmic logic depth) is the shape level parallelism
//! scales on; the chain-like `xl_spec` tier is depth-dominated — its
//! critical path *is* the circuit — and is covered by the `ogws_schedule`
//! bench instead.
//!
//! Before timing, the harness asserts the determinism contract: every
//! thread count must produce identical final metrics. On a single-core
//! machine (or without the `parallel` feature) that contract is all this
//! bench can demonstrate — expect speedups ≈ 1.
//!
//! ```text
//! cargo bench -p ncgws-bench --features parallel --bench threads_scaling
//! NCGWS_QUICK=1 cargo bench -p ncgws-bench --features parallel --bench threads_scaling  # 10k only
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_bench::quick_mode;
use ncgws_core::{Flow, OptimizerConfig, ParallelPolicy, RunControl, SolveStrategy};
use ncgws_netlist::{xl_wide_spec, SyntheticGenerator};

/// Outer-iteration budget per measured solve (matches `ogws_schedule` and
/// the `table1 --json` threads section).
const ITERATIONS: usize = 25;

fn config(threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        max_iterations: ITERATIONS,
        solve_strategy: SolveStrategy::adaptive(),
        parallel: ParallelPolicy::threads(threads),
        ..OptimizerConfig::default()
    }
}

fn threads_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("threads_scaling");
    let sizes: &[usize] = if quick_mode() {
        &[10_000]
    } else {
        &[10_000, 100_000]
    };
    for &components in sizes {
        let instance = SyntheticGenerator::new(xl_wide_spec(components))
            .generate()
            .expect("wide XL generation succeeds");

        // Determinism gate before any timing: all thread counts agree.
        let reference = Flow::prepare(&instance, config(1))
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("t1 sizing");
        for threads in [2usize, 4] {
            let run = Flow::prepare(&instance, config(threads))
                .expect("prepare")
                .order()
                .expect("order")
                .size()
                .expect("tN sizing");
            assert_eq!(
                reference.report.final_metrics, run.report.final_metrics,
                "thread-count determinism violated at {threads} threads on {components}"
            );
        }

        let control = RunControl::new();
        for threads in [1usize, 2, 4] {
            let ordered = Flow::prepare(&instance, config(threads))
                .expect("prepare")
                .order()
                .expect("order");
            let mut engine = ordered.engine();
            group.bench_with_input(
                BenchmarkId::new(format!("t{threads}"), components),
                &components,
                |b, _| {
                    b.iter(|| {
                        ordered
                            .size_with_engine(&mut engine, None, &control)
                            .expect("sizing")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, threads_scaling);
criterion_main!(benches);
