//! Stage-1 cost: WOSS (O(n²)) vs the exact Held–Karp ordering (O(2ⁿ·n²)) on
//! one routing channel, plus WOSS on large channels to confirm the quadratic
//! growth stays negligible next to the sizing stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_circuit::NodeId;
use ncgws_ordering::{exact_ordering, woss, SsProblem};

fn problem(n: usize) -> SsProblem {
    let mut weights = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let w = (((i * 31 + j * 17) % 19) as f64 + 1.0) / 19.0;
                weights[i * n + j] = w;
                weights[j * n + i] = w;
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            let w = weights[j * n + i];
            weights[i * n + j] = w;
        }
    }
    SsProblem::from_weights((0..n).map(NodeId::new).collect(), weights).unwrap()
}

fn ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_ordering");
    for n in [8usize, 12, 64, 256] {
        let p = problem(n);
        group.bench_with_input(BenchmarkId::new("woss", n), &p, |b, p| b.iter(|| woss(p)));
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("exact", n), &p, |b, p| {
                b.iter(|| exact_ordering(p).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ordering);
criterion_main!(benches);
