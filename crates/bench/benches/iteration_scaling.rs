//! Figure 10(b) micro-view: the cost of ONE OGWS building block (an LRS
//! sweep bundle, i.e. one call of the LRS subroutine) as a function of the
//! circuit size. The paper's claim is linear time per iteration; Criterion's
//! per-size timings divided by the component count should therefore be flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_bench::{generate, paper_config};
use ncgws_core::{
    build_coupling, ConstraintBounds, LrsSolver, Multipliers, OrderingStrategy, SizingProblem,
};
use ncgws_netlist::CircuitSpec;

fn lrs_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrs_per_iteration");
    group.sample_size(20);
    for (gates, wires) in [(100, 220), (200, 440), (400, 880), (800, 1760)] {
        let spec = CircuitSpec::new(format!("scale-{gates}"), gates, wires).with_seed(29);
        let instance = generate(spec);
        let ordering = build_coupling(&instance, OrderingStrategy::Woss, false).unwrap();
        let graph = &instance.circuit;
        let config = paper_config();
        let initial = config.initial_sizes(graph);
        let initial_metrics =
            ncgws_core::CircuitMetrics::evaluate(graph, &ordering.coupling, &initial);
        let bounds = ConstraintBounds::from_initial(&initial_metrics, &config)
            .clamped_to_feasible(graph, &ordering.coupling);
        let problem = SizingProblem::new(graph, &ordering.coupling, bounds).unwrap();
        let multipliers = Multipliers::uniform(graph, 1.0, 1.0);
        let solver = LrsSolver::new(5, 1e-6);
        group.bench_with_input(
            BenchmarkId::from_parameter(gates + wires),
            &problem,
            |b, p| b.iter(|| solver.solve(p, &multipliers)),
        );
    }
    group.finish();
}

criterion_group!(benches, lrs_iteration);
criterion_main!(benches);
