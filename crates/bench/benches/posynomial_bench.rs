//! Cost of the coupling-capacitance models: exact 1/(1-x) vs the k-term
//! posynomial truncation used inside the optimizer's inner loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ncgws_coupling::{exact_factor, truncated_factor};

fn posynomial(c: &mut Criterion) {
    let xs: Vec<f64> = (0..1024).map(|i| 0.9 * (i as f64 + 0.5) / 1024.0).collect();
    c.bench_function("exact_factor_1024", |b| {
        b.iter(|| xs.iter().map(|&x| exact_factor(black_box(x))).sum::<f64>())
    });
    for k in [2usize, 3, 5] {
        c.bench_function(format!("truncated_factor_k{k}_1024"), |b| {
            b.iter(|| {
                xs.iter()
                    .map(|&x| truncated_factor(black_box(x), k))
                    .sum::<f64>()
            })
        });
    }
}

criterion_group!(benches, posynomial);
criterion_main!(benches);
