//! Engine-reuse vs allocate-per-call evaluation cost.
//!
//! Measures one LRS solve (a fixed number of `O(V + E + P)` sweeps) through
//! the two equivalent paths:
//!
//! * `naive` — the seed's allocate-per-call loop
//!   (`ncgws_core::reference::lrs_solve`): fresh `Vec`s for coupling loads,
//!   downstream caps and upstream resistances on every sweep;
//! * `engine` — `LrsSolver::solve_with` on a reused `SizingEngine`: zero
//!   heap allocation after setup.
//!
//! Both produce bitwise identical results (asserted below), so the timing
//! difference is purely the allocator + locality cost the engine removes.
//! Run with `cargo bench -p ncgws-bench --bench elmore_bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_circuit::{CircuitBuilder, CircuitGraph, GateKind, Technology};
use ncgws_core::{
    reference, ConstraintBounds, LrsSolver, Multipliers, SizingEngine, SizingProblem,
};
use ncgws_coupling::{CouplingPair, CouplingSet, WirePairGeometry};

const SWEEPS: usize = 5;

/// A driver-fed wire/gate chain with `components` sizable components and
/// coupling between consecutive wires.
fn chain(components: usize) -> (CircuitGraph, Vec<String>) {
    let mut b = CircuitBuilder::new(Technology::dac99());
    let mut prev = b.add_driver("drv", 120.0).unwrap();
    let mut wire_names = Vec::new();
    for i in 0..components {
        let node = if i % 2 == 0 {
            let name = format!("w{i}");
            let w = b.add_wire(&name, 60.0 + (i % 7) as f64 * 25.0).unwrap();
            wire_names.push(name);
            w
        } else {
            b.add_gate(&format!("g{i}"), GateKind::Inv).unwrap()
        };
        b.connect(prev, node).unwrap();
        prev = node;
    }
    // The chain must end in a wire driving the primary output.
    let last = if components.is_multiple_of(2) {
        let w = b.add_wire("w_out", 80.0).unwrap();
        b.connect(prev, w).unwrap();
        wire_names.push("w_out".to_string());
        w
    } else {
        prev
    };
    b.connect_output(last, 8.0).unwrap();
    (b.build().unwrap(), wire_names)
}

fn coupling_for(graph: &CircuitGraph, wire_names: &[String]) -> CouplingSet {
    let geom = WirePairGeometry::new(50.0, 21.0, 0.03).unwrap();
    let pairs = wire_names
        .windows(2)
        .map(|names| {
            let a = graph.node_by_name(&names[0]).unwrap();
            let b = graph.node_by_name(&names[1]).unwrap();
            CouplingPair::new(a, b, geom).unwrap()
        })
        .collect();
    CouplingSet::new(graph, pairs).unwrap()
}

fn lrs_sweep_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrs_solve_5_sweeps");
    for components in [100usize, 1_000, 10_000] {
        let (graph, wire_names) = chain(components);
        let coupling = coupling_for(&graph, &wire_names);
        let bounds = ConstraintBounds {
            delay: 1e15,
            total_capacitance: 1e15,
            crosstalk: 1e15,
        };
        let problem = SizingProblem::new(&graph, &coupling, bounds).unwrap();
        let multipliers = Multipliers::uniform(&graph, 1.0, 1.0);
        let solver = LrsSolver::new(SWEEPS, 0.0);

        // Sanity: the two paths agree bitwise before we time them.
        let naive = reference::lrs_solve(&problem, &multipliers, SWEEPS, 0.0);
        let mut engine = SizingEngine::for_problem(&problem);
        let mut sizes = graph.minimum_sizes();
        solver.solve_with(&mut engine, &multipliers, &mut sizes);
        assert_eq!(
            naive.sizes, sizes,
            "paths diverged at {components} components"
        );

        group.bench_with_input(
            BenchmarkId::new("naive", components),
            &problem,
            |b, problem| b.iter(|| reference::lrs_solve(problem, &multipliers, SWEEPS, 0.0)),
        );
        group.bench_with_input(
            BenchmarkId::new("engine", components),
            &problem,
            |b, _problem| b.iter(|| solver.solve_with(&mut engine, &multipliers, &mut sizes)),
        );
    }
    group.finish();
}

criterion_group!(benches, lrs_sweep_cost);
criterion_main!(benches);
