//! Scalar-vs-4-lane A/B of the vectorized sweep kernels (this PR's SoA
//! rewrite), per kernel and end-to-end, on the wide XL synthetic tier.
//!
//! Three groups:
//!
//! * `delay_kernel` — the per-node delay evaluation: kind-dispatched scalar
//!   `delays_chunk` vs the branch-free `delays_chunk_lanes` streaming the
//!   SoA `node_size`/`charged` slabs.
//! * `fused_backward` — one full reverse-topological fused sweep: scalar
//!   `fused_downstream_chunk` vs the three-phase `fused_downstream_chunk_lanes`
//!   (accumulate → batch-resize → write-back), with a no-op resize so the
//!   timing isolates the traversal arithmetic.
//! * `simd_end_to_end` — a whole adaptive stage-2 solve under
//!   `ParallelPolicy::Sequential` (the untouched scalar oracle) vs
//!   `ParallelPolicy::threads(1)` (the laned grid on the calling thread) —
//!   the same A/B the `simd` section of `BENCH_table1.json` records.
//!
//! ```text
//! cargo bench -p ncgws-bench --bench simd_kernels
//! NCGWS_QUICK=1 cargo bench -p ncgws-bench --bench simd_kernels   # 1k + 10k only
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_bench::quick_mode;
use ncgws_circuit::{CircuitTopology, ElmoreAnalyzer, SharedMut, MAX_CHUNK_NODES};
use ncgws_core::{Flow, OptimizerConfig, ParallelPolicy, RunControl, SolveStrategy};
use ncgws_netlist::{xl_wide_spec, SyntheticGenerator};

/// Outer-iteration budget of the end-to-end group (matches `ogws_schedule`).
const ITERATIONS: usize = 25;

fn tiers() -> &'static [usize] {
    if quick_mode() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    }
}

fn simd_kernels(c: &mut Criterion) {
    let mut delay_group = c.benchmark_group("delay_kernel");
    for &components in tiers() {
        let instance = SyntheticGenerator::new(xl_wide_spec(components))
            .generate()
            .expect("wide XL generation succeeds");
        let graph = &instance.circuit;
        let topo = CircuitTopology::new(graph);
        let n = topo.num_nodes();
        let sizes = graph.uniform_sizes(1.0);
        let caps = ElmoreAnalyzer::new(graph).downstream_caps(&sizes, None);
        let mut node_size = vec![1.0; n];
        topo.fill_node_sizes(sizes.as_slice(), &mut node_size);
        let mut delays = vec![0.0f64; n];

        delay_group.bench_with_input(
            BenchmarkId::new("scalar", components),
            &components,
            |b, _| {
                b.iter(|| {
                    // SAFETY: in-bounds range, matching slices, sole borrower.
                    unsafe {
                        topo.delays_chunk(
                            0..n,
                            sizes.as_slice(),
                            &caps.charged,
                            SharedMut::new(&mut delays),
                        );
                    }
                    delays[n - 1]
                })
            },
        );
        delay_group.bench_with_input(
            BenchmarkId::new("laned", components),
            &components,
            |b, _| {
                b.iter(|| {
                    // SAFETY: as above; `node_size` mirrors `sizes` and
                    // `charged` is a downstream-caps result.
                    unsafe {
                        topo.delays_chunk_lanes(
                            0..n,
                            &node_size,
                            &caps.charged,
                            SharedMut::new(&mut delays),
                        );
                    }
                    delays[n - 1]
                })
            },
        );
    }
    delay_group.finish();

    let mut fused_group = c.benchmark_group("fused_backward");
    for &components in tiers() {
        let instance = SyntheticGenerator::new(xl_wide_spec(components))
            .generate()
            .expect("wide XL generation succeeds");
        let graph = &instance.circuit;
        let topo = CircuitTopology::new(graph);
        let n = topo.num_nodes();
        let sizes = graph.uniform_sizes(1.0);
        let extra_cap = vec![0.0f64; n];
        let mut xs: Vec<f64> = sizes.as_slice().to_vec();
        let mut charged = vec![0.0f64; n];
        let mut presented = vec![0.0f64; n];

        fused_group.bench_with_input(
            BenchmarkId::new("scalar", components),
            &components,
            |b, _| {
                b.iter(|| {
                    let mut noop = |_comp: usize, _idx: usize, _c: f64, x: f64| x;
                    for l in (0..topo.num_levels()).rev() {
                        // SAFETY: levels settle in reverse order, slices
                        // match the circuit, sole borrower of each slab.
                        unsafe {
                            topo.fused_downstream_chunk(
                                topo.level(l),
                                SharedMut::new(&mut xs),
                                &extra_cap,
                                SharedMut::new(&mut charged),
                                SharedMut::new(&mut presented),
                                &mut noop,
                            );
                        }
                    }
                    charged[n - 1]
                })
            },
        );
        fused_group.bench_with_input(
            BenchmarkId::new("laned", components),
            &components,
            |b, _| {
                b.iter(|| {
                    let mut noop = |_nodes: &[u32], _values: &[f64], _xs: SharedMut<'_, f64>| {};
                    for l in (0..topo.num_levels()).rev() {
                        // The laned kernel takes at most one chunk granule
                        // per call — exactly how the level grid feeds it.
                        for chunk in topo.level(l).chunks(MAX_CHUNK_NODES) {
                            // SAFETY: as the scalar arm; chunk granule size
                            // enforced by the loop above.
                            unsafe {
                                topo.fused_downstream_chunk_lanes(
                                    chunk,
                                    SharedMut::new(&mut xs),
                                    &extra_cap,
                                    SharedMut::new(&mut charged),
                                    SharedMut::new(&mut presented),
                                    &mut noop,
                                );
                            }
                        }
                    }
                    charged[n - 1]
                })
            },
        );
    }
    fused_group.finish();

    let mut e2e_group = c.benchmark_group("simd_end_to_end");
    e2e_group.sample_size(10);
    for &components in tiers() {
        let instance = SyntheticGenerator::new(xl_wide_spec(components))
            .generate()
            .expect("wide XL generation succeeds");
        for (label, policy) in [
            ("scalar", ParallelPolicy::Sequential),
            ("laned", ParallelPolicy::threads(1)),
        ] {
            let config = OptimizerConfig {
                max_iterations: ITERATIONS,
                solve_strategy: SolveStrategy::adaptive(),
                parallel: policy,
                ..OptimizerConfig::default()
            };
            let ordered = Flow::prepare(&instance, config)
                .expect("prepare")
                .order()
                .expect("order");
            let control = RunControl::new();
            let mut engine = ordered.engine();
            e2e_group.bench_with_input(BenchmarkId::new(label, components), &components, |b, _| {
                b.iter(|| {
                    ordered
                        .size_with_engine(&mut engine, None, &control)
                        .expect("adaptive sizing")
                })
            });
        }
    }
    e2e_group.finish();
}

criterion_group!(benches, simd_kernels);
criterion_main!(benches);
