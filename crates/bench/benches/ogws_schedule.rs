//! End-to-end OGWS cost of the exact Figure-8 schedule vs the adaptive
//! solve schedule (`ncgws_core::schedule`), on the XL synthetic tier.
//!
//! Each measurement runs a full stage-2 sizing (a fixed OGWS iteration
//! budget over one prepared ordering, reusing one engine) so the timing
//! includes everything an iteration pays: LRS sweeps, timing analysis,
//! constraint evaluation, multiplier update and projection. The adaptive
//! schedule must come out ≥3× faster at the 10k-component tier — the
//! headline claim of the solve-schedule subsystem; the assertion below
//! enforces the invariant side (same feasibility, gap within tolerance)
//! on every run.
//!
//! ```text
//! cargo bench -p ncgws-bench --bench ogws_schedule
//! NCGWS_QUICK=1 cargo bench -p ncgws-bench --bench ogws_schedule   # 1k + 10k only
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_bench::quick_mode;
use ncgws_core::{Flow, OptimizerConfig, RunControl, SolveStrategy};
use ncgws_netlist::{xl_spec, SyntheticGenerator};

/// Outer-iteration budget per measured solve: enough iterations that the
/// steady-state schedule dominates, small enough for a bench iteration.
const ITERATIONS: usize = 25;

fn config(strategy: SolveStrategy) -> OptimizerConfig {
    OptimizerConfig {
        max_iterations: ITERATIONS,
        solve_strategy: strategy,
        ..OptimizerConfig::default()
    }
}

fn ogws_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ogws_end_to_end");
    let sizes: &[usize] = if quick_mode() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &components in sizes {
        let instance = SyntheticGenerator::new(xl_spec(components))
            .generate()
            .expect("XL generation succeeds");

        let exact = Flow::prepare(&instance, config(SolveStrategy::Exact))
            .expect("prepare")
            .order()
            .expect("order");
        let adaptive = Flow::prepare(&instance, config(SolveStrategy::adaptive()))
            .expect("prepare")
            .order()
            .expect("order");

        // Invariant check before timing: same feasibility verdict, duality
        // gap within tolerance of each other.
        let exact_run = exact.size().expect("exact sizing");
        let adaptive_run = adaptive.size().expect("adaptive sizing");
        assert_eq!(
            exact_run.report.feasible, adaptive_run.report.feasible,
            "schedules disagree on feasibility at {components} components"
        );
        let gap_slack = exact_run.report.duality_gap.abs() * 1e-2 + 1e-6;
        assert!(
            adaptive_run.report.duality_gap <= exact_run.report.duality_gap + gap_slack,
            "adaptive gap {} much worse than exact {} at {components}",
            adaptive_run.report.duality_gap,
            exact_run.report.duality_gap
        );

        let control = RunControl::new();
        let mut exact_engine = exact.engine();
        group.bench_with_input(
            BenchmarkId::new("exact", components),
            &components,
            |b, _| {
                b.iter(|| {
                    exact
                        .size_with_engine(&mut exact_engine, None, &control)
                        .expect("exact sizing")
                })
            },
        );
        let mut adaptive_engine = adaptive.engine();
        group.bench_with_input(
            BenchmarkId::new("adaptive", components),
            &components,
            |b, _| {
                b.iter(|| {
                    adaptive
                        .size_with_engine(&mut adaptive_engine, None, &control)
                        .expect("adaptive sizing")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ogws_schedule);
criterion_main!(benches);
