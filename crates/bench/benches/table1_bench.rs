//! Criterion bench behind the Table 1 reproduction: the full two-stage flow
//! (ordering + OGWS sizing) on circuits of increasing size. Paired with the
//! `table1` binary, which prints the actual table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncgws_bench::{generate, optimize, paper_config};
use ncgws_core::OptimizerConfig;
use ncgws_netlist::CircuitSpec;

fn full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow");
    group.sample_size(10);
    for (gates, wires) in [(107, 213), (214, 426), (428, 852)] {
        let spec = CircuitSpec::new(format!("bench-{gates}"), gates, wires).with_seed(13);
        let instance = generate(spec);
        let config = OptimizerConfig {
            max_iterations: 30,
            ..paper_config()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(gates + wires),
            &instance,
            |b, inst| b.iter(|| optimize(inst, config.clone())),
        );
    }
    group.finish();
}

criterion_group!(benches, full_flow);
criterion_main!(benches);
