//! Reproduction of Table 1: noise, delay, power and area before/after
//! simultaneous gate and wire sizing, for ten circuits matching the paper's
//! ISCAS85 gate/wire counts.
//!
//! ```text
//! cargo run --release -p ncgws-bench --bin table1
//! cargo run --release -p ncgws-bench --bin table1 -- --json   # one JSON object per row
//! NCGWS_QUICK=1 cargo run --release -p ncgws-bench --bin table1   # 4 smallest circuits
//! ```
//!
//! In `--json` mode the run also persists a machine-readable summary to
//! `BENCH_table1.json` (in the current directory — the repo root when run
//! via `cargo`), so the perf trajectory is tracked across PRs; CI runs this
//! under `NCGWS_QUICK=1`, checks it against the committed baseline with the
//! `perfguard` binary, and uploads the file as an artifact. Besides the
//! Table-1 rows (now including the inner-sweep accounting of the solve
//! schedule), the summary carries a `schedule` section comparing the exact
//! Figure-8 schedule against the adaptive solve schedule on the XL
//! synthetic tier (1k/10k — plus 100k components outside quick mode), a
//! `simd` section comparing the scalar sequential oracle against the
//! 4-lane vectorized kernels (`ParallelPolicy::threads(1)`) on the wide XL
//! tier, and a `threads` section measuring the level-parallel policy
//! (`ParallelPolicy::threads`) on the wide XL tier at 1/2/4 threads — read
//! those speedups against the document's `hardware_threads` and
//! `parallel_feature` fields (a single-core CI runner can only demonstrate
//! determinism, not scaling). Thread rows asking for more workers than the
//! host has are flagged `oversubscribed` so downstream comparisons can
//! ignore their scheduling artifacts. Perfguard compares the `schedule`,
//! `simd` and non-oversubscribed `threads` rows across baselines whenever
//! both files carry them.

use std::time::Instant;

use ncgws_bench::{generate, optimize, paper_config, quick_mode};
use ncgws_core::report::{average_improvements, OptimizationReport};
use ncgws_core::{Flow, OptimizerConfig, ParallelPolicy, SolveStrategy};
use ncgws_netlist::{table1_specs, xl_spec, xl_wide_spec};

/// Outer-iteration budget of the XL schedule comparison (matches the
/// `ogws_schedule` criterion bench).
const SCHEDULE_ITERATIONS: usize = 25;

/// Thread counts measured by the `threads` scaling section.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    // With `--json` every row is emitted as one JSON-serialized
    // `OptimizationReport` on its own line (JSON Lines), and the
    // human-readable table is suppressed so the output pipes cleanly into
    // `jq` or a dataframe loader.
    let json_mode = std::env::args().skip(1).any(|arg| arg == "--json");
    let quick = quick_mode();

    let mut specs = table1_specs();
    if quick {
        specs.sort_by_key(|s| s.total_components());
        specs.truncate(4);
    }

    if !json_mode {
        println!("Table 1 reproduction — noise-constrained simultaneous gate and wire sizing");
        println!("(synthetic circuits matched to the paper's gate/wire counts; see DESIGN.md)");
        println!();
        println!("{}", OptimizationReport::table1_header());
    }

    let mut reports = Vec::new();
    for spec in specs {
        let instance = generate(spec);
        let outcome = optimize(&instance, paper_config());
        if json_mode {
            match serde_json::to_string(&outcome.report) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("failed to serialize report for `{}`: {e}", instance.name),
            }
        } else {
            println!("{}", outcome.report.table1_row());
        }
        reports.push(outcome.report);
    }

    if json_mode {
        let schedule = run_schedule_comparison(quick);
        let simd = run_simd_comparison(quick);
        let threads = run_threads_scaling(quick);
        write_bench_summary(&reports, schedule, simd, threads, quick);
        return;
    }

    let avg = average_improvements(&reports);
    println!();
    println!(
        "Impr(%)   noise {:.2}%   delay {:.2}%   power {:.2}%   area {:.2}%",
        avg.noise_pct, avg.delay_pct, avg.power_pct, avg.area_pct
    );
    println!("paper     noise 89.67%   delay 5.30%   power 86.82%   area 87.90%   (for reference)");

    if let Ok(json) = serde_json::to_string_pretty(&reports) {
        let path = std::path::Path::new("target/table1_results.json");
        if std::fs::write(path, json).is_ok() {
            println!("\nper-circuit records written to {}", path.display());
        }
    }
}

/// One circuit's aggregate row of the perf-trajectory artifact.
#[derive(serde::Serialize)]
struct BenchRow {
    name: String,
    components: usize,
    iterations: usize,
    runtime_seconds: f64,
    seconds_per_iteration: f64,
    sweeps_total: usize,
    mean_sweeps_per_solve: f64,
    mean_touched_per_sweep: f64,
    memory_kib: f64,
    feasible: bool,
    duality_gap: f64,
    noise_improvement_pct: f64,
    area_improvement_pct: f64,
}

/// One XL-tier row comparing the exact and adaptive solve schedules on the
/// same prepared ordering (same iteration budget, same bounds).
#[derive(serde::Serialize)]
struct ScheduleRow {
    name: String,
    components: usize,
    iterations: usize,
    exact_seconds_per_iteration: f64,
    adaptive_seconds_per_iteration: f64,
    /// `exact / adaptive` — the headline win of the adaptive schedule.
    speedup: f64,
    exact_mean_sweeps_per_solve: f64,
    adaptive_mean_sweeps_per_solve: f64,
    exact_mean_touched_per_sweep: f64,
    adaptive_mean_touched_per_sweep: f64,
    exact_duality_gap: f64,
    adaptive_duality_gap: f64,
    feasibility_agrees: bool,
}

/// One row of the `threads` scaling section: the adaptive schedule on a
/// wide-XL tier under the level-parallel policy at one thread count.
#[derive(serde::Serialize)]
struct ThreadsRow {
    name: String,
    components: usize,
    threads: usize,
    iterations: usize,
    seconds_per_iteration: f64,
    /// `t1 / tN` end-to-end stage-2 ratio. Only meaningful on hardware with
    /// that many cores and the `parallel` feature compiled in — see the
    /// document-level `hardware_threads` / `parallel_feature` fields.
    speedup_vs_one_thread: f64,
    /// `true` when the row requested more workers than the host exposes
    /// (`hardware_threads < threads`): its ratio measures scheduler
    /// oversubscription, not the engine, so `perfguard` skips gating it.
    oversubscribed: bool,
}

/// One row of the `simd` section: the adaptive schedule on the wide XL
/// tier, scalar sequential oracle (`ParallelPolicy::Sequential`) vs the
/// 4-lane vectorized kernel path (`ParallelPolicy::threads(1)` — the same
/// deterministic grid on the calling thread, laned kernels enabled).
#[derive(serde::Serialize)]
struct SimdRow {
    name: String,
    components: usize,
    iterations: usize,
    scalar_seconds_per_iteration: f64,
    laned_seconds_per_iteration: f64,
    /// `scalar / laned` — the single-thread vectorization win.
    speedup: f64,
}

/// The whole `BENCH_table1.json` document.
#[derive(serde::Serialize)]
struct BenchSummary {
    bench: String,
    quick: bool,
    /// Whether the binary was compiled with the `parallel` feature (without
    /// it the `threads` rows all execute the same grid on one thread).
    parallel_feature: bool,
    /// `std::thread::available_parallelism()` of the benchmarking machine —
    /// the context the `threads` speedups must be read in.
    hardware_threads: usize,
    circuits: Vec<BenchRow>,
    schedule: Vec<ScheduleRow>,
    simd: Vec<SimdRow>,
    threads: Vec<ThreadsRow>,
    average_improvements: ncgws_core::report::Improvements,
    total_runtime_seconds: f64,
}

/// Runs the exact-vs-adaptive schedule comparison on the XL tier.
fn run_schedule_comparison(quick: bool) -> Vec<ScheduleRow> {
    let tiers: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut rows = Vec::new();
    for &components in tiers {
        let instance = generate(xl_spec(components));
        let mut per_strategy = Vec::new();
        for strategy in [SolveStrategy::Exact, SolveStrategy::adaptive()] {
            let config = OptimizerConfig {
                max_iterations: SCHEDULE_ITERATIONS,
                solve_strategy: strategy,
                ..OptimizerConfig::default()
            };
            let ordered = Flow::prepare(&instance, config)
                .expect("valid configuration")
                .order()
                .expect("stage 1 succeeds");
            let started = Instant::now();
            let sized = ordered.size().expect("stage 2 succeeds");
            let elapsed = started.elapsed().as_secs_f64();
            let iterations = sized.report.iterations.max(1);
            per_strategy.push((elapsed / iterations as f64, sized.report));
        }
        let (exact_spi, exact) = &per_strategy[0];
        let (adaptive_spi, adaptive) = &per_strategy[1];
        eprintln!(
            "schedule xl tier {components}: exact {:.6} s/iter, adaptive {:.6} s/iter ({:.2}x)",
            exact_spi,
            adaptive_spi,
            exact_spi / adaptive_spi
        );
        rows.push(ScheduleRow {
            name: exact.name.clone(),
            components,
            iterations: SCHEDULE_ITERATIONS,
            exact_seconds_per_iteration: *exact_spi,
            adaptive_seconds_per_iteration: *adaptive_spi,
            speedup: exact_spi / adaptive_spi,
            exact_mean_sweeps_per_solve: exact.mean_sweeps_per_solve,
            adaptive_mean_sweeps_per_solve: adaptive.mean_sweeps_per_solve,
            exact_mean_touched_per_sweep: exact.mean_touched_per_sweep,
            adaptive_mean_touched_per_sweep: adaptive.mean_touched_per_sweep,
            exact_duality_gap: exact.duality_gap,
            adaptive_duality_gap: adaptive.duality_gap,
            feasibility_agrees: exact.feasible == adaptive.feasible,
        });
    }
    rows
}

/// Runs the level-parallel thread-scaling measurement: the adaptive
/// schedule on the *wide* XL tier (logarithmic-depth circuits — the shape
/// level parallelism scales on; the chain-like `xl_spec` tier is
/// depth-dominated and stays in the `schedule` section) at 1/2/4 threads.
/// Also asserts the determinism contract: every thread count must land on
/// the exact same final metrics.
fn run_threads_scaling(quick: bool) -> Vec<ThreadsRow> {
    let tiers: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for &components in tiers {
        let instance = generate(xl_wide_spec(components));
        let mut one_thread_spi = f64::NAN;
        let mut reference_metrics = None;
        for &threads in &THREAD_COUNTS {
            let config = OptimizerConfig {
                max_iterations: SCHEDULE_ITERATIONS,
                solve_strategy: SolveStrategy::adaptive(),
                parallel: ParallelPolicy::threads(threads),
                ..OptimizerConfig::default()
            };
            let ordered = Flow::prepare(&instance, config)
                .expect("valid configuration")
                .order()
                .expect("stage 1 succeeds");
            let started = Instant::now();
            let sized = ordered.size().expect("stage 2 succeeds");
            let elapsed = started.elapsed().as_secs_f64();
            let iterations = sized.report.iterations.max(1);
            let spi = elapsed / iterations as f64;
            if threads == 1 {
                one_thread_spi = spi;
            }
            match &reference_metrics {
                None => reference_metrics = Some(sized.report.final_metrics),
                Some(reference) => assert_eq!(
                    *reference, sized.report.final_metrics,
                    "thread-count determinism violated at {threads} threads"
                ),
            }
            eprintln!(
                "threads {}@t{threads}: {spi:.6} s/iter ({:.2}x vs t1)",
                sized.report.name,
                one_thread_spi / spi
            );
            rows.push(ThreadsRow {
                name: sized.report.name.clone(),
                components,
                threads,
                // The actual count behind the spi denominator (the run may
                // converge below the SCHEDULE_ITERATIONS budget).
                iterations,
                seconds_per_iteration: spi,
                speedup_vs_one_thread: one_thread_spi / spi,
                oversubscribed: hardware_threads < threads,
            });
        }
    }
    rows
}

/// Runs the single-thread vectorization A/B: the adaptive schedule on the
/// wide XL tier with `ParallelPolicy::Sequential` (the untouched scalar
/// oracle) against `ParallelPolicy::threads(1)` (the same deterministic
/// chunk grid walked on the calling thread, with the 4-lane kernels and
/// lane-blocked aggregates engaged). Both runs sit under the adaptive
/// epsilon-pinned contract, so their final metrics must agree to 1e-6
/// relative — asserted here, gated continuously by the property tests.
fn run_simd_comparison(quick: bool) -> Vec<SimdRow> {
    let tiers: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut rows = Vec::new();
    for &components in tiers {
        let instance = generate(xl_wide_spec(components));
        let mut per_policy = Vec::new();
        for policy in [ParallelPolicy::Sequential, ParallelPolicy::threads(1)] {
            let config = OptimizerConfig {
                max_iterations: SCHEDULE_ITERATIONS,
                solve_strategy: SolveStrategy::adaptive(),
                parallel: policy,
                ..OptimizerConfig::default()
            };
            let ordered = Flow::prepare(&instance, config)
                .expect("valid configuration")
                .order()
                .expect("stage 1 succeeds");
            let started = Instant::now();
            let sized = ordered.size().expect("stage 2 succeeds");
            let elapsed = started.elapsed().as_secs_f64();
            let iterations = sized.report.iterations.max(1);
            per_policy.push((elapsed / iterations as f64, sized.report));
        }
        let (scalar_spi, scalar) = &per_policy[0];
        let (laned_spi, laned) = &per_policy[1];
        for (metric, s, l) in [
            (
                "noise_pf",
                scalar.final_metrics.noise_pf,
                laned.final_metrics.noise_pf,
            ),
            (
                "area_um2",
                scalar.final_metrics.area_um2,
                laned.final_metrics.area_um2,
            ),
        ] {
            assert!(
                (s - l).abs() <= 1e-6 * s.abs().max(1.0),
                "laned kernels drifted past the 1e-6 contract on tier {components} ({metric}: scalar {s}, laned {l})"
            );
        }
        eprintln!(
            "simd {} tier {components}: scalar {:.6} s/iter, laned {:.6} s/iter ({:.2}x)",
            scalar.name,
            scalar_spi,
            laned_spi,
            scalar_spi / laned_spi
        );
        rows.push(SimdRow {
            name: scalar.name.clone(),
            components,
            iterations: SCHEDULE_ITERATIONS,
            scalar_seconds_per_iteration: *scalar_spi,
            laned_seconds_per_iteration: *laned_spi,
            speedup: scalar_spi / laned_spi,
        });
    }
    rows
}

/// The machine-readable perf-trajectory artifact: per-circuit aggregates
/// small and stable enough to diff across PRs (full `OptimizationReport`s
/// go to stdout / `target/table1_results.json`).
fn write_bench_summary(
    reports: &[OptimizationReport],
    schedule: Vec<ScheduleRow>,
    simd: Vec<SimdRow>,
    threads: Vec<ThreadsRow>,
    quick: bool,
) {
    let summary = BenchSummary {
        bench: "table1".to_string(),
        quick,
        parallel_feature: cfg!(feature = "parallel"),
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        circuits: reports
            .iter()
            .map(|r| BenchRow {
                name: r.name.clone(),
                components: r.total_components(),
                iterations: r.iterations,
                runtime_seconds: r.runtime_seconds,
                seconds_per_iteration: r.seconds_per_iteration,
                sweeps_total: r.sweeps_total,
                mean_sweeps_per_solve: r.mean_sweeps_per_solve,
                mean_touched_per_sweep: r.mean_touched_per_sweep,
                memory_kib: r.memory.total() as f64 / 1024.0,
                feasible: r.feasible,
                duality_gap: r.duality_gap,
                noise_improvement_pct: r.improvements.noise_pct,
                area_improvement_pct: r.improvements.area_pct,
            })
            .collect(),
        schedule,
        simd,
        threads,
        average_improvements: average_improvements(reports),
        total_runtime_seconds: reports.iter().map(|r| r.runtime_seconds).sum::<f64>(),
    };
    // Fail loudly: exiting 0 with a stale committed BENCH_table1.json on
    // disk would let CI upload the previous PR's numbers as current.
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => {
            let path = std::path::Path::new("BENCH_table1.json");
            match std::fs::write(path, json + "\n") {
                Ok(()) => eprintln!("bench summary written to {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("failed to serialize bench summary: {e}");
            std::process::exit(1);
        }
    }
}
