//! Reproduction of Table 1: noise, delay, power and area before/after
//! simultaneous gate and wire sizing, for ten circuits matching the paper's
//! ISCAS85 gate/wire counts.
//!
//! ```text
//! cargo run --release -p ncgws-bench --bin table1
//! cargo run --release -p ncgws-bench --bin table1 -- --json   # one JSON object per row
//! NCGWS_QUICK=1 cargo run --release -p ncgws-bench --bin table1   # 4 smallest circuits
//! ```

use ncgws_bench::{generate, optimize, paper_config, quick_mode};
use ncgws_core::report::{average_improvements, OptimizationReport};
use ncgws_netlist::table1_specs;

fn main() {
    // With `--json` every row is emitted as one JSON-serialized
    // `OptimizationReport` on its own line (JSON Lines), and the
    // human-readable table is suppressed so the output pipes cleanly into
    // `jq` or a dataframe loader.
    let json_mode = std::env::args().skip(1).any(|arg| arg == "--json");

    let mut specs = table1_specs();
    if quick_mode() {
        specs.sort_by_key(|s| s.total_components());
        specs.truncate(4);
    }

    if !json_mode {
        println!("Table 1 reproduction — noise-constrained simultaneous gate and wire sizing");
        println!("(synthetic circuits matched to the paper's gate/wire counts; see DESIGN.md)");
        println!();
        println!("{}", OptimizationReport::table1_header());
    }

    let mut reports = Vec::new();
    for spec in specs {
        let instance = generate(spec);
        let outcome = optimize(&instance, paper_config());
        if json_mode {
            match serde_json::to_string(&outcome.report) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("failed to serialize report for `{}`: {e}", instance.name),
            }
        } else {
            println!("{}", outcome.report.table1_row());
        }
        reports.push(outcome.report);
    }

    if json_mode {
        return;
    }

    let avg = average_improvements(&reports);
    println!();
    println!(
        "Impr(%)   noise {:.2}%   delay {:.2}%   power {:.2}%   area {:.2}%",
        avg.noise_pct, avg.delay_pct, avg.power_pct, avg.area_pct
    );
    println!("paper     noise 89.67%   delay 5.30%   power 86.82%   area 87.90%   (for reference)");

    if let Ok(json) = serde_json::to_string_pretty(&reports) {
        let path = std::path::Path::new("target/table1_results.json");
        if std::fs::write(path, json).is_ok() {
            println!("\nper-circuit records written to {}", path.display());
        }
    }
}
