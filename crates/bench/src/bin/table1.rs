//! Reproduction of Table 1: noise, delay, power and area before/after
//! simultaneous gate and wire sizing, for ten circuits matching the paper's
//! ISCAS85 gate/wire counts.
//!
//! ```text
//! cargo run --release -p ncgws-bench --bin table1
//! cargo run --release -p ncgws-bench --bin table1 -- --json   # one JSON object per row
//! NCGWS_QUICK=1 cargo run --release -p ncgws-bench --bin table1   # 4 smallest circuits
//! ```
//!
//! In `--json` mode the run also persists a machine-readable summary to
//! `BENCH_table1.json` (in the current directory — the repo root when run
//! via `cargo`), so the perf trajectory is tracked across PRs; CI runs this
//! under `NCGWS_QUICK=1` and uploads the file as an artifact.

use ncgws_bench::{generate, optimize, paper_config, quick_mode};
use ncgws_core::report::{average_improvements, OptimizationReport};
use ncgws_netlist::table1_specs;

fn main() {
    // With `--json` every row is emitted as one JSON-serialized
    // `OptimizationReport` on its own line (JSON Lines), and the
    // human-readable table is suppressed so the output pipes cleanly into
    // `jq` or a dataframe loader.
    let json_mode = std::env::args().skip(1).any(|arg| arg == "--json");
    let quick = quick_mode();

    let mut specs = table1_specs();
    if quick {
        specs.sort_by_key(|s| s.total_components());
        specs.truncate(4);
    }

    if !json_mode {
        println!("Table 1 reproduction — noise-constrained simultaneous gate and wire sizing");
        println!("(synthetic circuits matched to the paper's gate/wire counts; see DESIGN.md)");
        println!();
        println!("{}", OptimizationReport::table1_header());
    }

    let mut reports = Vec::new();
    for spec in specs {
        let instance = generate(spec);
        let outcome = optimize(&instance, paper_config());
        if json_mode {
            match serde_json::to_string(&outcome.report) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("failed to serialize report for `{}`: {e}", instance.name),
            }
        } else {
            println!("{}", outcome.report.table1_row());
        }
        reports.push(outcome.report);
    }

    if json_mode {
        write_bench_summary(&reports, quick);
        return;
    }

    let avg = average_improvements(&reports);
    println!();
    println!(
        "Impr(%)   noise {:.2}%   delay {:.2}%   power {:.2}%   area {:.2}%",
        avg.noise_pct, avg.delay_pct, avg.power_pct, avg.area_pct
    );
    println!("paper     noise 89.67%   delay 5.30%   power 86.82%   area 87.90%   (for reference)");

    if let Ok(json) = serde_json::to_string_pretty(&reports) {
        let path = std::path::Path::new("target/table1_results.json");
        if std::fs::write(path, json).is_ok() {
            println!("\nper-circuit records written to {}", path.display());
        }
    }
}

/// One circuit's aggregate row of the perf-trajectory artifact.
#[derive(serde::Serialize)]
struct BenchRow {
    name: String,
    components: usize,
    iterations: usize,
    runtime_seconds: f64,
    seconds_per_iteration: f64,
    memory_kib: f64,
    feasible: bool,
    duality_gap: f64,
    noise_improvement_pct: f64,
    area_improvement_pct: f64,
}

/// The whole `BENCH_table1.json` document.
#[derive(serde::Serialize)]
struct BenchSummary {
    bench: String,
    quick: bool,
    circuits: Vec<BenchRow>,
    average_improvements: ncgws_core::report::Improvements,
    total_runtime_seconds: f64,
}

/// The machine-readable perf-trajectory artifact: per-circuit aggregates
/// small and stable enough to diff across PRs (full `OptimizationReport`s
/// go to stdout / `target/table1_results.json`).
fn write_bench_summary(reports: &[OptimizationReport], quick: bool) {
    let summary = BenchSummary {
        bench: "table1".to_string(),
        quick,
        circuits: reports
            .iter()
            .map(|r| BenchRow {
                name: r.name.clone(),
                components: r.total_components(),
                iterations: r.iterations,
                runtime_seconds: r.runtime_seconds,
                seconds_per_iteration: r.seconds_per_iteration,
                memory_kib: r.memory.total() as f64 / 1024.0,
                feasible: r.feasible,
                duality_gap: r.duality_gap,
                noise_improvement_pct: r.improvements.noise_pct,
                area_improvement_pct: r.improvements.area_pct,
            })
            .collect(),
        average_improvements: average_improvements(reports),
        total_runtime_seconds: reports.iter().map(|r| r.runtime_seconds).sum::<f64>(),
    };
    // Fail loudly: exiting 0 with a stale committed BENCH_table1.json on
    // disk would let CI upload the previous PR's numbers as current.
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => {
            let path = std::path::Path::new("BENCH_table1.json");
            match std::fs::write(path, json + "\n") {
                Ok(()) => eprintln!("bench summary written to {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("failed to serialize bench summary: {e}");
            std::process::exit(1);
        }
    }
}
