//! Reproduction of Figure 10: (a) memory requirement vs circuit size and
//! (b) runtime per OGWS iteration vs circuit size, over the ten Table 1
//! circuits. Both curves should be approximately linear in the total number
//! of gates and wires.
//!
//! ```text
//! cargo run --release -p ncgws-bench --bin figure10
//! ```

use ncgws_bench::{generate, optimize, paper_config, quick_mode};
use ncgws_netlist::iscas::table1_specs_by_size;

/// Least-squares linear fit returning (slope, intercept, r²).
fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (slope, intercept, r2)
}

fn main() {
    let mut specs = table1_specs_by_size();
    if quick_mode() {
        specs.truncate(4);
    }

    println!("Figure 10 reproduction — storage and runtime-per-iteration vs circuit size");
    println!();
    println!(
        "{:<8} {:>8} {:>12} {:>16} {:>8}",
        "Ckt", "#G+#W", "mem (MB)", "sec/iteration", "iters"
    );

    let mut memory_points = Vec::new();
    let mut runtime_points = Vec::new();
    for spec in specs {
        let total = spec.total_components() as f64;
        let instance = generate(spec);
        let outcome = optimize(&instance, paper_config());
        let mem_mb = outcome.report.memory.total_mib();
        let sec_per_it = outcome.report.seconds_per_iteration;
        println!(
            "{:<8} {:>8} {:>12.3} {:>16.4} {:>8}",
            outcome.report.name, total as usize, mem_mb, sec_per_it, outcome.report.iterations
        );
        memory_points.push((total, mem_mb));
        runtime_points.push((total, sec_per_it));
    }

    let (ms, mi, mr2) = linear_fit(&memory_points);
    let (rs, ri, rr2) = linear_fit(&runtime_points);
    println!();
    println!(
        "Figure 10(a): memory ≈ {:.3e}·(#G+#W) + {:.3} MB,  R² = {:.3}",
        ms, mi, mr2
    );
    println!(
        "Figure 10(b): sec/it ≈ {:.3e}·(#G+#W) + {:.4} s,   R² = {:.3}",
        rs, ri, rr2
    );
    println!();
    println!("the paper reports both curves to be approximately linear (1.0–2.1 MB and");
    println!("0–400 s/iteration on a 1999 UltraSPARC-I); only the linearity is comparable.");
}
