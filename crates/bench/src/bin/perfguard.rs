//! Perf-regression guard over the committed `BENCH_table1.json` baseline.
//!
//! ```text
//! perfguard <baseline.json> <current.json> [max_regression]
//! ```
//!
//! Compares the per-circuit `seconds_per_iteration` of the freshly
//! regenerated summary against the committed baseline and exits non-zero
//! when any circuit regressed by more than `max_regression` (default 0.25,
//! i.e. 25 %). When **both** files carry a `threads` section (the
//! level-parallel scaling rows of `table1 --json`), those rows are compared
//! under the same gate, keyed by `name@t<threads>` — except rows flagged
//! `oversubscribed` (more workers requested than the host exposes), whose
//! timing measures scheduler thrash rather than the engine and is skipped.
//! When both files carry a `simd` section (the scalar-vs-4-lane
//! single-thread A/B), its scalar and laned timings are gated too, keyed
//! `name@scalar` / `name@laned`. Circuits present in
//! only one file are reported but do not fail the guard (the tier set may
//! legitimately change across PRs). A zero, negative or non-finite
//! `seconds_per_iteration` on either side is a *hard error* (exit 2): such
//! a ratio could never fail — or always fail — the gate, silently
//! disarming it. CI copies the committed file aside, regenerates it with
//! `table1 --json` under `NCGWS_QUICK=1`, then runs this guard.
//!
//! The vendored `serde_json` is serialize-only, so the two documents are
//! read with a purpose-built scanner. Unlike its first incarnation — which
//! truncated the `"circuits"` section at the first `]` and split objects on
//! `{`, silently dropping every circuit after a nested array or object —
//! the scanner is bracket-depth- and string-aware: sections end at their
//! *matching* bracket, objects at theirs, and fields are matched at the
//! object's top depth only, in any key order.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Returns the index just past a JSON string starting at `start`
/// (`bytes[start] == b'"'`), honoring backslash escapes, plus the string's
/// contents.
fn read_string(bytes: &[u8], start: usize) -> Option<(usize, &str)> {
    debug_assert_eq!(bytes[start], b'"');
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                let content = std::str::from_utf8(&bytes[start + 1..i]).ok()?;
                return Some((i + 1, content));
            }
            _ => i += 1,
        }
    }
    None
}

/// Returns the index of the bracket matching the one at `open`
/// (`bytes[open]` is `[` or `{`), skipping strings.
fn matching_bracket(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => i = read_string(bytes, i)?.0,
            b'[' | b'{' => {
                depth += 1;
                i += 1;
            }
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// The interior of the top-level array named `section` (between — not
/// including — its matching brackets), or `None` when the document has no
/// such section. Only keys at depth 1 (direct members of the root object)
/// match, so a circuit *named* `"threads"` can never hijack a section.
fn section_array<'a>(json: &'a str, section: &str) -> Option<&'a str> {
    let bytes = json.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let (after, token) = read_string(bytes, i)?;
                i = after;
                if depth != 1 || token != section {
                    continue;
                }
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b':' {
                    continue;
                }
                j += 1;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'[' {
                    let close = matching_bracket(bytes, j)?;
                    return Some(&json[j + 1..close]);
                }
            }
            b'[' | b'{' => {
                depth += 1;
                i += 1;
            }
            b']' | b'}' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// The top-level object slices (including their braces) of an array
/// interior, each delimited at its *matching* brace — nested arrays and
/// objects inside a row stay inside that row.
fn array_objects(array: &str) -> Vec<&str> {
    let bytes = array.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => match read_string(bytes, i) {
                Some((after, _)) => i = after,
                None => break,
            },
            b'{' => match matching_bracket(bytes, i) {
                Some(close) => {
                    out.push(&array[i..=close]);
                    i = close + 1;
                }
                None => break,
            },
            _ => i += 1,
        }
    }
    out
}

/// The raw value text of `key` at the top depth of an object slice
/// (braces included), in any key order; `None` when the key is absent.
fn field<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let bytes = object.as_bytes();
    debug_assert_eq!(bytes.first(), Some(&b'{'));
    let end = matching_bracket(bytes, 0)?;
    let mut i = 1;
    while i < end {
        // Skip to the next key.
        while i < end && bytes[i] != b'"' {
            i += 1;
        }
        if i >= end {
            break;
        }
        let (after_key, name) = read_string(bytes, i)?;
        let mut j = after_key;
        while j < end && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= end || bytes[j] != b':' {
            // Not a key (e.g. a string inside an array value that slipped
            // through) — resynchronize.
            i = after_key;
            continue;
        }
        j += 1;
        while j < end && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let value_start = j;
        let value_end = match bytes.get(j) {
            Some(b'"') => read_string(bytes, j)?.0,
            Some(b'[') | Some(b'{') => matching_bracket(bytes, j)? + 1,
            _ => {
                let mut k = j;
                while k < end && bytes[k] != b',' {
                    k += 1;
                }
                k
            }
        };
        if name == key {
            return Some(object[value_start..value_end].trim());
        }
        i = value_end;
    }
    None
}

/// A string-typed field of an object slice.
fn string_field(object: &str, key: &str) -> Option<String> {
    let raw = field(object, key)?;
    let bytes = raw.as_bytes();
    if bytes.first() != Some(&b'"') {
        return None;
    }
    read_string(bytes, 0).map(|(_, s)| s.to_string())
}

/// A number-typed field of an object slice.
fn number_field(object: &str, key: &str) -> Option<f64> {
    field(object, key)?.parse().ok()
}

/// Extracts `name → seconds_per_iteration` from the `"circuits"` array of a
/// `BENCH_table1.json` document. Rows missing either key are skipped.
fn circuit_timings(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(array) = section_array(json, "circuits") else {
        return out;
    };
    for object in array_objects(array) {
        if let (Some(name), Some(spi)) = (
            string_field(object, "name"),
            number_field(object, "seconds_per_iteration"),
        ) {
            out.insert(name, spi);
        }
    }
    out
}

/// Extracts `name@t<threads> → seconds_per_iteration` from the `"threads"`
/// scaling section, when present (older baselines carry none — the caller
/// compares only when both sides do). Rows flagged `oversubscribed: true`
/// asked for more workers than the host has; their ratio is a scheduling
/// artifact, so they are excluded from gating (and announced once).
fn thread_timings(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(array) = section_array(json, "threads") else {
        return out;
    };
    for object in array_objects(array) {
        if let (Some(name), Some(threads), Some(spi)) = (
            string_field(object, "name"),
            number_field(object, "threads"),
            number_field(object, "seconds_per_iteration"),
        ) {
            if field(object, "oversubscribed") == Some("true") {
                eprintln!("perfguard: threads `{name}@t{threads:.0}` is oversubscribed (skipped)");
                continue;
            }
            out.insert(format!("{name}@t{threads:.0}"), spi);
        }
    }
    out
}

/// Extracts `name@scalar` / `name@laned` → seconds-per-iteration pairs from
/// the `"simd"` section (the single-thread scalar-oracle vs 4-lane kernel
/// A/B), when present.
fn simd_timings(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(array) = section_array(json, "simd") else {
        return out;
    };
    for object in array_objects(array) {
        if let (Some(name), Some(scalar), Some(laned)) = (
            string_field(object, "name"),
            number_field(object, "scalar_seconds_per_iteration"),
            number_field(object, "laned_seconds_per_iteration"),
        ) {
            out.insert(format!("{name}@scalar"), scalar);
            out.insert(format!("{name}@laned"), laned);
        }
    }
    out
}

/// The measurement context of a summary's `threads` scaling rows:
/// `(hardware_threads, parallel_feature)` as raw value text. Speedups are
/// only comparable between runs that share it.
fn scaling_context(json: &str) -> Option<(String, String)> {
    let doc = json.trim();
    if !doc.starts_with('{') {
        return None;
    }
    Some((
        field(doc, "hardware_threads")?.to_string(),
        field(doc, "parallel_feature")?.to_string(),
    ))
}

/// Compares one timing map against its baseline. Returns whether any row
/// regressed beyond `max_regression`.
///
/// # Errors
///
/// A zero, negative or non-finite timing on either side is a hard error:
/// the resulting ratio would be `inf`/`NaN` and could never fail (or would
/// always fail) the gate, so the guard refuses to pretend it checked
/// anything.
fn compare(
    label: &str,
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    max_regression: f64,
) -> Result<bool, String> {
    let mut failed = false;
    for (name, &base) in baseline {
        match current.get(name) {
            None => eprintln!("perfguard: {label} `{name}` missing from the current run (skipped)"),
            Some(&now) => {
                if !(base.is_finite() && base > 0.0) {
                    return Err(format!(
                        "{label} `{name}`: baseline seconds_per_iteration is {base} — must be \
                         positive and finite for the regression ratio to mean anything"
                    ));
                }
                if !(now.is_finite() && now > 0.0) {
                    return Err(format!(
                        "{label} `{name}`: current seconds_per_iteration is {now} — must be \
                         positive and finite for the regression ratio to mean anything"
                    ));
                }
                let change = now / base - 1.0;
                let verdict = if change > max_regression {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "perfguard: {label} {name:<10} {base:.6} -> {now:.6} s/iter ({:+.1}%) {verdict}",
                    change * 100.0
                );
            }
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            eprintln!("perfguard: {label} `{name}` is new (no baseline; skipped)");
        }
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: perfguard <baseline.json> <current.json> [max_regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_regression must be a number"))
        .unwrap_or(0.25);

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perfguard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline_doc = read(&args[0]);
    let current_doc = read(&args[1]);
    let baseline = circuit_timings(&baseline_doc);
    let current = circuit_timings(&current_doc);
    if baseline.is_empty() || current.is_empty() {
        eprintln!("perfguard: could not find circuit timings in one of the inputs");
        return ExitCode::from(2);
    }

    let mut failed = match compare("circuit", &baseline, &current, max_regression) {
        Ok(failed) => failed,
        Err(message) => {
            eprintln!("perfguard: hard error: {message}");
            return ExitCode::from(2);
        }
    };

    // The threads scaling rows are compared only when both documents carry
    // them (older baselines predate the section) AND both were measured in
    // the same parallel context: the rows are machine-dependent by nature
    // (a t4 row measured on one core records oversubscription, on eight
    // cores real scaling), so diffing them across machines would fail CI
    // with no code regression behind it.
    let baseline_threads = thread_timings(&baseline_doc);
    let current_threads = thread_timings(&current_doc);
    let contexts_match = match (
        scaling_context(&baseline_doc),
        scaling_context(&current_doc),
    ) {
        (Some(base), Some(now)) if base == now => true,
        (Some(base), Some(now)) => {
            eprintln!(
                "perfguard: threads rows measured in different contexts \
                 (baseline {base:?} vs current {now:?}); skipped"
            );
            false
        }
        _ => false,
    };
    if contexts_match && !baseline_threads.is_empty() && !current_threads.is_empty() {
        match compare(
            "threads",
            &baseline_threads,
            &current_threads,
            max_regression,
        ) {
            Ok(threads_failed) => failed |= threads_failed,
            Err(message) => {
                eprintln!("perfguard: hard error: {message}");
                return ExitCode::from(2);
            }
        }
    } else if baseline_threads.is_empty() != current_threads.is_empty() {
        eprintln!("perfguard: threads section present in only one file (skipped)");
    }

    // The simd rows are single-thread on both sides, so no scaling-context
    // match is needed — the same committed-vs-regenerated premise as the
    // circuits section applies.
    let baseline_simd = simd_timings(&baseline_doc);
    let current_simd = simd_timings(&current_doc);
    if !baseline_simd.is_empty() && !current_simd.is_empty() {
        match compare("simd", &baseline_simd, &current_simd, max_regression) {
            Ok(simd_failed) => failed |= simd_failed,
            Err(message) => {
                eprintln!("perfguard: hard error: {message}");
                return ExitCode::from(2);
            }
        }
    } else if baseline_simd.is_empty() != current_simd.is_empty() {
        eprintln!("perfguard: simd section present in only one file (skipped)");
    }

    if failed {
        eprintln!(
            "perfguard: seconds_per_iteration regressed more than {:.0}% — failing",
            max_regression * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "perfguard: no circuit regressed more than {:.0}%",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "table1",
  "quick": true,
  "circuits": [
    { "name": "c432", "components": 640, "seconds_per_iteration": 0.000125, "feasible": true },
    { "name": "c880", "components": 1112, "seconds_per_iteration": 0.000375, "feasible": true }
  ],
  "schedule": [
    { "name": "xl10", "components": 10000, "exact_seconds_per_iteration": 0.0065 }
  ],
  "simd": [
    { "name": "xlw10", "components": 10000,
      "scalar_seconds_per_iteration": 0.006,
      "laned_seconds_per_iteration": 0.003, "speedup": 2.0 }
  ],
  "threads": [
    { "name": "xlw10", "threads": 1, "seconds_per_iteration": 0.004 },
    { "name": "xlw10", "threads": 4, "seconds_per_iteration": 0.0015 },
    { "name": "xlw10", "threads": 8, "seconds_per_iteration": 0.0031,
      "oversubscribed": true }
  ]
}"#;

    /// The regression the bracket-depth scanner fixes: a nested array (and
    /// a nested object) inside a circuit row must not truncate the section
    /// scan, and rows after it must still be extracted.
    const NESTED: &str = r#"{
  "circuits": [
    { "name": "c432",
      "per_thread_seconds": [0.0001, 0.00008, { "worker": 3, "seconds": 0.007 }],
      "memory": { "name": "not-a-circuit", "buckets": [1, 2] },
      "seconds_per_iteration": 0.000125 },
    { "name": "c880", "seconds_per_iteration": 0.000375 }
  ]
}"#;

    /// Key order inside a row must not matter.
    const OUT_OF_ORDER: &str = r#"{
  "circuits": [
    { "seconds_per_iteration": 0.5, "components": 10, "name": "alpha" },
    { "feasible": false, "name": "beta", "seconds_per_iteration": 0.25 }
  ]
}"#;

    /// Rows without both keys are skipped, not misparsed.
    const MISSING_KEY: &str = r#"{
  "circuits": [
    { "name": "timed", "seconds_per_iteration": 0.5 },
    { "name": "untimed", "components": 10 },
    { "seconds_per_iteration": 0.125, "components": 4 }
  ]
}"#;

    #[test]
    fn timings_are_extracted_per_circuit() {
        let map = circuit_timings(SAMPLE);
        assert_eq!(map.len(), 2);
        assert!((map["c432"] - 0.000125).abs() < 1e-12);
        assert!((map["c880"] - 0.000375).abs() < 1e-12);
    }

    #[test]
    fn schedule_rows_are_not_mixed_in() {
        let map = circuit_timings(SAMPLE);
        assert!(!map.contains_key("xl10"));
        assert!(!map.contains_key("xlw10"));
    }

    #[test]
    fn nested_arrays_do_not_truncate_the_scan() {
        let map = circuit_timings(NESTED);
        assert_eq!(map.len(), 2, "both circuits must survive the nested row");
        assert!((map["c432"] - 0.000125).abs() < 1e-12);
        assert!((map["c880"] - 0.000375).abs() < 1e-12);
        assert!(
            !map.contains_key("not-a-circuit"),
            "keys of nested objects must not leak into the row"
        );
    }

    #[test]
    fn key_order_does_not_matter() {
        let map = circuit_timings(OUT_OF_ORDER);
        assert_eq!(map.len(), 2);
        assert!((map["alpha"] - 0.5).abs() < 1e-12);
        assert!((map["beta"] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rows_missing_a_key_are_skipped() {
        let map = circuit_timings(MISSING_KEY);
        assert_eq!(map.len(), 1);
        assert!(map.contains_key("timed"));
        assert!(!map.contains_key("untimed"));
    }

    #[test]
    fn thread_rows_are_keyed_by_name_and_count() {
        let map = thread_timings(SAMPLE);
        assert_eq!(map.len(), 2);
        assert!((map["xlw10@t1"] - 0.004).abs() < 1e-12);
        assert!((map["xlw10@t4"] - 0.0015).abs() < 1e-12);
        assert!(thread_timings(NESTED).is_empty(), "absent section is empty");
    }

    #[test]
    fn oversubscribed_thread_rows_are_excluded_from_gating() {
        let map = thread_timings(SAMPLE);
        assert!(
            !map.contains_key("xlw10@t8"),
            "the t8 row is flagged oversubscribed and must not be ratio-gated"
        );
    }

    #[test]
    fn simd_rows_expose_both_scalar_and_laned_timings() {
        let map = simd_timings(SAMPLE);
        assert_eq!(map.len(), 2);
        assert!((map["xlw10@scalar"] - 0.006).abs() < 1e-12);
        assert!((map["xlw10@laned"] - 0.003).abs() < 1e-12);
        assert!(simd_timings(NESTED).is_empty(), "absent section is empty");
    }

    #[test]
    fn scaling_context_reads_the_measurement_fields() {
        let doc = r#"{ "bench": "table1", "parallel_feature": true,
                       "hardware_threads": 8, "threads": [] }"#;
        assert_eq!(
            scaling_context(doc),
            Some(("8".to_string(), "true".to_string()))
        );
        // Documents predating the fields carry no context — the threads
        // comparison is skipped rather than spuriously failed.
        assert_eq!(scaling_context(r#"{ "bench": "table1" }"#), None);
    }

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn compare_flags_regressions_and_tolerates_tier_changes() {
        let baseline = map(&[("a", 0.1), ("gone", 0.2)]);
        let current = map(&[("a", 0.1001), ("new", 0.3)]);
        assert_eq!(compare("t", &baseline, &current, 0.25), Ok(false));
        let regressed = map(&[("a", 0.2)]);
        assert_eq!(compare("t", &baseline, &regressed, 0.25), Ok(true));
    }

    #[test]
    fn zero_baseline_is_a_hard_error() {
        let baseline = map(&[("a", 0.0)]);
        let current = map(&[("a", 0.1)]);
        let err = compare("t", &baseline, &current, 0.25).unwrap_err();
        assert!(err.contains("positive and finite"), "{err}");
    }

    #[test]
    fn non_finite_timings_are_hard_errors() {
        let nan_base = map(&[("a", f64::NAN)]);
        let fine = map(&[("a", 0.1)]);
        assert!(compare("t", &nan_base, &fine, 0.25).is_err());
        let inf_now = map(&[("a", f64::INFINITY)]);
        assert!(compare("t", &fine, &inf_now, 0.25).is_err());
        let neg_now = map(&[("a", -0.5)]);
        assert!(compare("t", &fine, &neg_now, 0.25).is_err());
    }
}
