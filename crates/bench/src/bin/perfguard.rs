//! Perf-regression guard over the committed `BENCH_table1.json` baseline.
//!
//! ```text
//! perfguard <baseline.json> <current.json> [max_regression]
//! ```
//!
//! Compares the per-circuit `seconds_per_iteration` of the freshly
//! regenerated summary against the committed baseline and exits non-zero
//! when any circuit regressed by more than `max_regression` (default 0.25,
//! i.e. 25 %). Circuits present in only one file are reported but do not
//! fail the guard (the tier set may legitimately change across PRs). CI
//! copies the committed file aside, regenerates it with
//! `table1 --json` under `NCGWS_QUICK=1`, then runs this guard.
//!
//! The vendored `serde_json` is serialize-only, so the two documents are
//! read with a purpose-built scanner that understands exactly the shape
//! `table1 --json` writes: inside the `"circuits"` array, each object
//! carries one `"name"` string and one `"seconds_per_iteration"` number.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts `name → seconds_per_iteration` from the `"circuits"` array of a
/// `BENCH_table1.json` document.
fn circuit_timings(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    // Limit the scan to the circuits array so the schedule section's rows
    // (which also carry `name`) are not mixed in.
    let start = match json.find("\"circuits\"") {
        Some(pos) => pos,
        None => return out,
    };
    let section = &json[start..];
    let end = section.find(']').map(|e| &section[..e]).unwrap_or(section);

    // The circuits array holds flat objects, so splitting on '{' yields one
    // chunk per circuit; within a chunk the two fields are read by key.
    for object in end.split('{').skip(1) {
        let name = object
            .split("\"name\":")
            .nth(1)
            .and_then(|rest| rest.split('"').nth(1))
            .map(str::to_string);
        let spi = object
            .split("\"seconds_per_iteration\":")
            .nth(1)
            .and_then(|rest| {
                rest.trim_start()
                    .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
                    .next()
                    .and_then(|tok| tok.parse::<f64>().ok())
            });
        if let (Some(name), Some(spi)) = (name, spi) {
            out.insert(name, spi);
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: perfguard <baseline.json> <current.json> [max_regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_regression must be a number"))
        .unwrap_or(0.25);

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perfguard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = circuit_timings(&read(&args[0]));
    let current = circuit_timings(&read(&args[1]));
    if baseline.is_empty() || current.is_empty() {
        eprintln!("perfguard: could not find circuit timings in one of the inputs");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for (name, &base) in &baseline {
        match current.get(name) {
            None => eprintln!("perfguard: `{name}` missing from the current run (skipped)"),
            Some(&now) => {
                let change = now / base - 1.0;
                let verdict = if change > max_regression {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "perfguard: {name:<8} {base:.6} -> {now:.6} s/iter ({:+.1}%) {verdict}",
                    change * 100.0
                );
            }
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            eprintln!("perfguard: `{name}` is new (no baseline; skipped)");
        }
    }

    if failed {
        eprintln!(
            "perfguard: seconds_per_iteration regressed more than {:.0}% — failing",
            max_regression * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "perfguard: no circuit regressed more than {:.0}%",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::circuit_timings;

    const SAMPLE: &str = r#"{
  "bench": "table1",
  "quick": true,
  "circuits": [
    { "name": "c432", "components": 640, "seconds_per_iteration": 0.000125, "feasible": true },
    { "name": "c880", "components": 1112, "seconds_per_iteration": 0.000375, "feasible": true }
  ],
  "schedule": [
    { "name": "xl10", "components": 10000, "exact_seconds_per_iteration": 0.0065 }
  ]
}"#;

    #[test]
    fn timings_are_extracted_per_circuit() {
        let map = circuit_timings(SAMPLE);
        assert_eq!(map.len(), 2);
        assert!((map["c432"] - 0.000125).abs() < 1e-12);
        assert!((map["c880"] - 0.000375).abs() < 1e-12);
    }

    #[test]
    fn schedule_rows_are_not_mixed_in() {
        let map = circuit_timings(SAMPLE);
        assert!(!map.contains_key("xl10"));
    }
}
