//! Reproduction of the Theorem 1 error table quoted in Section 3.1:
//! at x = 0.25 the k-term truncation of 1/(1-x) has error ratio below
//! 6.3%, 1.6%, 0.4% and 0.1% for k = 2, 3, 4, 5.
//!
//! ```text
//! cargo run --release -p ncgws-bench --bin theorem1
//! ```

use ncgws_coupling::{exact_factor, truncated_factor, truncation_error_ratio};

fn main() {
    println!("Theorem 1 — truncation error of the posynomial coupling model");
    println!();
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>14}",
        "x", "k", "measured", "x^k (theory)", "paper bound"
    );
    let paper_bounds = [(2usize, 0.063), (3, 0.016), (4, 0.004), (5, 0.001)];
    for &x in &[0.1, 0.25, 0.5] {
        for &(k, bound) in &paper_bounds {
            let exact = exact_factor(x);
            let approx = truncated_factor(x, k);
            let measured = (exact - approx) / exact;
            let theory = truncation_error_ratio(x, k);
            let bound_col = if (x - 0.25).abs() < 1e-12 {
                format!("{bound:>14.4}")
            } else {
                format!("{:>14}", "-")
            };
            println!("{x:>6.2} {k:>6} {measured:>14.6} {theory:>14.6} {bound_col}");
        }
    }
    println!();
    println!("the measured error matches x^k exactly and respects the bounds the paper quotes at x = 0.25.");
}
