//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. wire-ordering strategy (WOSS vs identity vs random vs best-start
//!    nearest neighbor) — effect on effective loading and final noise;
//! 2. the noise/power constraints (full optimizer vs delay/area-only
//!    Lagrangian baseline vs TILOS-style greedy) — what noise awareness
//!    costs and buys;
//! 3. subgradient step schedule — iterations to reach the 1% duality gap.
//!
//! ```text
//! cargo run --release -p ncgws-bench --bin ablation
//! ```

use ncgws_bench::{generate, optimize, paper_config};
use ncgws_core::baseline::{greedy_delay_sizing, lr_delay_area};
use ncgws_core::{build_coupling, CircuitMetrics, OptimizerConfig, OrderingStrategy, StepSchedule};
use ncgws_netlist::CircuitSpec;

fn main() {
    let spec = CircuitSpec::new("ablation", 214, 426).with_seed(77);
    let instance = generate(spec);
    println!(
        "ablation circuit: {} gates, {} wires, {} channels",
        instance.circuit.num_gates(),
        instance.circuit.num_wires(),
        instance.channels.len()
    );

    // ---------------- 1. ordering strategy ----------------
    println!("\n[1] wire-ordering strategy (stage 1)");
    println!(
        "{:<28} {:>18} {:>14}",
        "strategy", "effective loading", "noise (pF)"
    );
    for (name, strategy) in [
        ("woss (paper)", OrderingStrategy::Woss),
        ("identity", OrderingStrategy::Identity),
        ("random", OrderingStrategy::Random { seed: 3 }),
        (
            "best-start nearest-neighbor",
            OrderingStrategy::BestStartNearestNeighbor,
        ),
    ] {
        let config = OptimizerConfig {
            ordering: strategy,
            ..paper_config()
        };
        let outcome = optimize(&instance, config);
        println!(
            "{:<28} {:>18.2} {:>14.4}",
            name, outcome.report.ordering_effective_loading, outcome.report.final_metrics.noise_pf
        );
    }

    // ---------------- 2. noise awareness ----------------
    // A demanding delay target (85% of the unsized delay) keeps wires and
    // gates large enough that noise awareness actually matters; with a loose
    // target every method collapses to near-minimum sizes and the comparison
    // is vacuous.
    println!("\n[2] noise constraint on/off (delay bound = 0.85x initial)");
    let tight_delay = OptimizerConfig {
        delay_bound_factor: 0.85,
        ..paper_config()
    };
    let full = optimize(&instance, tight_delay.clone());
    println!(
        "{:<28} noise {:>10.4} pF  area {:>12.0} um2  delay {:>8.1} ps",
        "full (noise-constrained)",
        full.report.final_metrics.noise_pf,
        full.report.final_metrics.area_um2,
        full.report.final_metrics.delay_ps
    );
    let base = lr_delay_area(&instance, &tight_delay).expect("baseline runs");
    println!(
        "{:<28} noise {:>10.4} pF  area {:>12.0} um2  delay {:>8.1} ps",
        "delay/area-only LR", base.metrics.noise_pf, base.metrics.area_um2, base.metrics.delay_ps
    );
    // Greedy heuristic, targeting the same delay bound as the LR runs.
    let ordering = build_coupling(&instance, OrderingStrategy::Woss, false).expect("coupling");
    let initial = paper_config().initial_sizes(&instance.circuit);
    let initial_metrics = CircuitMetrics::evaluate(&instance.circuit, &ordering.coupling, &initial);
    let greedy = greedy_delay_sizing(
        &instance.circuit,
        &ordering.coupling,
        initial_metrics.delay_internal * 0.85,
        5_000,
    );
    let greedy_metrics =
        CircuitMetrics::evaluate(&instance.circuit, &ordering.coupling, &greedy.sizes);
    println!(
        "{:<28} noise {:>10.4} pF  area {:>12.0} um2  delay {:>8.1} ps  ({} moves{})",
        "greedy (TILOS-style)",
        greedy_metrics.noise_pf,
        greedy_metrics.area_um2,
        greedy_metrics.delay_ps,
        greedy.moves,
        if greedy.feasible {
            ""
        } else {
            ", bound missed"
        }
    );

    // ---------------- 3. step schedule ----------------
    println!("\n[3] subgradient step schedule (iterations to reach the 1% gap)");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "schedule", "iters", "best gap", "feasible"
    );
    for (name, schedule) in [
        (
            "1/sqrt(k), scale 8.0 (default)",
            StepSchedule::SqrtDecay { scale: 8.0 },
        ),
        (
            "1/sqrt(k), scale 2.5",
            StepSchedule::SqrtDecay { scale: 2.5 },
        ),
        ("1/k, scale 8.0", StepSchedule::Harmonic { scale: 8.0 }),
        ("constant 0.5", StepSchedule::Constant { scale: 0.5 }),
    ] {
        let config = OptimizerConfig {
            step_schedule: schedule,
            ..paper_config()
        };
        let outcome = optimize(&instance, config);
        println!(
            "{:<28} {:>10} {:>11.2}% {:>10}",
            name,
            outcome.report.iterations,
            outcome.report.duality_gap * 100.0,
            outcome.report.feasible
        );
    }
}
