//! Shared harness for the experiment-reproduction binaries and Criterion
//! benches.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/`:
//!
//! * `table1`   — Table 1 (per-circuit noise / delay / power / area, before
//!   and after sizing, iterations, runtime, memory, and the average
//!   improvement row);
//! * `figure10` — Figure 10(a) memory vs circuit size and Figure 10(b)
//!   runtime per iteration vs circuit size;
//! * `theorem1` — the truncation-error table quoted with Theorem 1;
//! * `ablation` — the design-choice ablations called out in DESIGN.md
//!   (ordering strategy, noise constraint on/off, step schedule).
//!
//! The Criterion benches in `benches/` measure the micro-level costs
//! (one LRS sweep, one OGWS iteration, wire ordering, posynomial evaluation)
//! and verify the linear scaling the paper claims.

#![warn(missing_docs)]

use ncgws_core::{OptimizationOutcome, Optimizer, OptimizerConfig};
use ncgws_netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};

/// Generates the problem instance for a circuit specification, panicking on
/// error (the harness only feeds it known-good specs).
pub fn generate(spec: CircuitSpec) -> ProblemInstance {
    SyntheticGenerator::new(spec)
        .generate()
        .expect("benchmark generation succeeds")
}

/// Runs the full two-stage optimizer on an instance with the given
/// configuration, panicking on error.
pub fn optimize(instance: &ProblemInstance, config: OptimizerConfig) -> OptimizationOutcome {
    Optimizer::new(config)
        .run(instance)
        .expect("optimization succeeds")
}

/// The configuration used by the Table 1 / Figure 10 reproductions:
/// the defaults (delay bound 1.0x, power bound 13%, crosstalk bound 11.5%,
/// WOSS ordering, 1% duality gap).
pub fn paper_config() -> OptimizerConfig {
    OptimizerConfig::default()
}

/// Returns `true` when the harness should only run a quick subset
/// (environment variable `NCGWS_QUICK=1`), used to keep CI fast.
pub fn quick_mode() -> bool {
    std::env::var("NCGWS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncgws_netlist::CircuitSpec;

    #[test]
    fn harness_runs_end_to_end_on_a_tiny_circuit() {
        let instance = generate(CircuitSpec::new("harness", 30, 70).with_seed(2));
        let outcome = optimize(
            &instance,
            OptimizerConfig {
                max_iterations: 20,
                ..paper_config()
            },
        );
        assert!(outcome.report.final_metrics.area_um2 > 0.0);
    }
}
