//! The bundle of inputs the optimizer consumes.

use ncgws_circuit::{CircuitGraph, NodeId};
use ncgws_waveform::PatternSet;
use serde::{Deserialize, Serialize};

/// Geometry shared by all routing channels of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelGeometry {
    /// Track pitch (middle-to-middle distance of adjacent tracks, µm).
    pub pitch: f64,
    /// Fraction of the shorter wire's length that overlaps its neighbor.
    pub overlap_fraction: f64,
    /// Unit-length fringing capacitance between adjacent wires (fF/µm).
    pub unit_fringing: f64,
}

impl ChannelGeometry {
    /// Overlap length between two wires of the given lengths.
    pub fn overlap_length(&self, len_a: f64, len_b: f64) -> f64 {
        self.overlap_fraction * len_a.min(len_b)
    }
}

/// A complete optimization problem instance: the circuit, its routing
/// channels (groups of wires that run in parallel and therefore couple), the
/// channel geometry, and the primary-input patterns used to derive switching
/// similarity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemInstance {
    /// Benchmark name.
    pub name: String,
    /// The circuit graph.
    pub circuit: CircuitGraph,
    /// Routing channels: each entry lists the wires sharing one channel.
    pub channels: Vec<Vec<NodeId>>,
    /// Geometry of every channel.
    pub geometry: ChannelGeometry,
    /// Primary-input vectors for logic simulation.
    pub patterns: PatternSet,
}

impl ProblemInstance {
    /// Length (µm) of a wire, recovered from its area coefficient.
    ///
    /// Returns 0 for non-wire nodes.
    pub fn wire_length(&self, id: NodeId) -> f64 {
        let node = self.circuit.node(id);
        if node.kind.is_wire() {
            node.attrs.area_coefficient / self.circuit.technology().wire_area_coefficient
        } else {
            0.0
        }
    }

    /// Total number of sizable components.
    pub fn num_components(&self) -> usize {
        self.circuit.num_components()
    }

    /// Number of wires that belong to some routing channel
    /// (only those can suffer crosstalk).
    pub fn num_channel_wires(&self) -> usize {
        self.channels.iter().map(Vec::len).sum()
    }

    /// An estimate (in bytes) of the instance's memory, used by the
    /// Figure 10(a) reproduction.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.circuit.memory_bytes()
            + self
                .channels
                .iter()
                .map(|c| size_of::<Vec<NodeId>>() + c.capacity() * size_of::<NodeId>())
                .sum::<usize>()
            + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_uses_the_shorter_wire() {
        let g = ChannelGeometry {
            pitch: 14.0,
            overlap_fraction: 0.5,
            unit_fringing: 0.03,
        };
        assert!((g.overlap_length(100.0, 40.0) - 20.0).abs() < 1e-12);
        assert!((g.overlap_length(40.0, 100.0) - 20.0).abs() < 1e-12);
    }
}
