//! A small line-oriented text netlist format.
//!
//! The format exists so externally prepared circuits (for example real
//! ISCAS85 translations) can be dropped into the flow without recompiling.
//! It is deliberately simple:
//!
//! ```text
//! # comment
//! circuit c17
//! driver   in0 120.0
//! gate     g0  nand
//! wire     w0  85.0
//! connect  in0 w0
//! connect  w0  g0
//! output   w3  6.0
//! channel  w0 w3 w7
//! geometry 14.0 0.6 0.03
//! patterns 64 0.35 12345
//! ```
//!
//! * `driver NAME RD` — input driver with resistance RD (Ω)
//! * `gate NAME KIND` — KIND ∈ buf, inv, and, or, nand, nor, xor, xnor
//! * `wire NAME LENGTH` — wire of LENGTH µm
//! * `connect FROM TO` — data flows FROM → TO
//! * `output NAME LOAD` — NAME drives a primary output with LOAD fF
//! * `channel NAME…` — the listed wires share a routing channel
//! * `geometry PITCH OVERLAP FRINGING` — channel geometry
//! * `patterns COUNT TOGGLE SEED` — correlated random input vectors
//!
//! The default [`Technology`] is used; everything
//! else round-trips exactly through [`write_instance`] / [`parse_instance`].

use std::collections::HashMap;
use std::fmt::Write as _;

use ncgws_circuit::{CircuitBuilder, GateKind, NodeKind, Technology};
use ncgws_waveform::PatternSet;

use crate::error::NetlistError;
use crate::instance::{ChannelGeometry, ProblemInstance};

fn gate_kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Buf => "buf",
        GateKind::Inv => "inv",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
    }
}

fn parse_gate_kind(s: &str) -> Option<GateKind> {
    Some(match s {
        "buf" => GateKind::Buf,
        "inv" => GateKind::Inv,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        _ => return None,
    })
}

/// Serializes a problem instance to the text format.
///
/// Patterns are written as a `patterns` directive only when they were
/// generated with known parameters; explicit pattern vectors are not
/// serialized (they are reproducible from the directive).
pub fn write_instance(instance: &ProblemInstance, pattern_directive: (usize, f64, u64)) -> String {
    let circuit = &instance.circuit;
    let mut out = String::new();
    let _ = writeln!(out, "# ncgws netlist");
    let _ = writeln!(out, "circuit {}", instance.name);
    for id in circuit.driver_ids() {
        let node = circuit.node(id);
        let _ = writeln!(out, "driver {} {}", node.name, node.attrs.driver_resistance);
    }
    for id in circuit.component_ids() {
        let node = circuit.node(id);
        match node.kind {
            NodeKind::Gate(kind) => {
                let _ = writeln!(out, "gate {} {}", node.name, gate_kind_name(kind));
            }
            NodeKind::Wire => {
                let _ = writeln!(out, "wire {} {}", node.name, instance.wire_length(id));
            }
            _ => {}
        }
    }
    for id in circuit.node_ids() {
        for &succ in circuit.fanout(id) {
            if id == circuit.source() || succ == circuit.sink() {
                continue;
            }
            let _ = writeln!(
                out,
                "connect {} {}",
                circuit.node(id).name,
                circuit.node(succ).name
            );
        }
    }
    for &id in circuit.primary_output_drivers() {
        let _ = writeln!(
            out,
            "output {} {}",
            circuit.node(id).name,
            circuit.node(id).attrs.output_load
        );
    }
    for channel in &instance.channels {
        if channel.is_empty() {
            continue;
        }
        let names: Vec<&str> = channel
            .iter()
            .map(|&w| circuit.node(w).name.as_str())
            .collect();
        let _ = writeln!(out, "channel {}", names.join(" "));
    }
    let g = instance.geometry;
    let _ = writeln!(
        out,
        "geometry {} {} {}",
        g.pitch, g.overlap_fraction, g.unit_fringing
    );
    let (count, toggle, seed) = pattern_directive;
    let _ = writeln!(out, "patterns {count} {toggle} {seed}");
    out
}

/// Parses the text format back into a [`ProblemInstance`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with the offending line number for any
/// malformed directive, and [`NetlistError::Circuit`] if the described
/// circuit fails validation.
pub fn parse_instance(text: &str) -> Result<ProblemInstance, NetlistError> {
    let tech = Technology::dac99();
    let mut builder = CircuitBuilder::new(tech);
    let mut handles: HashMap<String, ncgws_circuit::builder::BuildNode> = HashMap::new();
    let mut name = String::from("unnamed");
    let mut channels_by_name: Vec<Vec<String>> = Vec::new();
    let mut geometry = ChannelGeometry {
        pitch: 14.0,
        overlap_fraction: 0.6,
        unit_fringing: tech.coupling_fringing_per_um,
    };
    let mut pattern_directive: (usize, f64, u64) = (64, 0.35, 1);

    let err = |line: usize, reason: &str| NetlistError::Parse {
        line,
        reason: reason.to_string(),
    };
    let parse_f64 = |line: usize, tok: &str| -> Result<f64, NetlistError> {
        tok.parse::<f64>()
            .map_err(|_| err(line, "expected a number"))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        match tokens[0] {
            "circuit" => {
                name = tokens
                    .get(1)
                    .ok_or_else(|| err(line, "missing circuit name"))?
                    .to_string();
            }
            "driver" => {
                let [_, n, rd] = tokens[..] else {
                    return Err(err(line, "driver NAME RD"));
                };
                let handle = builder.add_driver(n, parse_f64(line, rd)?)?;
                handles.insert(n.to_string(), handle);
            }
            "gate" => {
                let [_, n, kind] = tokens[..] else {
                    return Err(err(line, "gate NAME KIND"));
                };
                let kind = parse_gate_kind(kind).ok_or_else(|| err(line, "unknown gate kind"))?;
                let handle = builder.add_gate(n, kind)?;
                handles.insert(n.to_string(), handle);
            }
            "wire" => {
                let [_, n, len] = tokens[..] else {
                    return Err(err(line, "wire NAME LENGTH"));
                };
                let handle = builder.add_wire(n, parse_f64(line, len)?)?;
                handles.insert(n.to_string(), handle);
            }
            "connect" => {
                let [_, from, to] = tokens[..] else {
                    return Err(err(line, "connect FROM TO"));
                };
                let from = *handles
                    .get(from)
                    .ok_or_else(|| err(line, "unknown component"))?;
                let to = *handles
                    .get(to)
                    .ok_or_else(|| err(line, "unknown component"))?;
                builder.connect(from, to)?;
            }
            "output" => {
                let [_, n, load] = tokens[..] else {
                    return Err(err(line, "output NAME LOAD"));
                };
                let node = *handles
                    .get(n)
                    .ok_or_else(|| err(line, "unknown component"))?;
                builder.connect_output(node, parse_f64(line, load)?)?;
            }
            "channel" => {
                if tokens.len() < 2 {
                    return Err(err(line, "channel needs at least one wire"));
                }
                channels_by_name.push(tokens[1..].iter().map(|s| s.to_string()).collect());
            }
            "geometry" => {
                let [_, pitch, overlap, fringing] = tokens[..] else {
                    return Err(err(line, "geometry PITCH OVERLAP FRINGING"));
                };
                geometry = ChannelGeometry {
                    pitch: parse_f64(line, pitch)?,
                    overlap_fraction: parse_f64(line, overlap)?,
                    unit_fringing: parse_f64(line, fringing)?,
                };
            }
            "patterns" => {
                let [_, count, toggle, seed] = tokens[..] else {
                    return Err(err(line, "patterns COUNT TOGGLE SEED"));
                };
                pattern_directive = (
                    count.parse().map_err(|_| err(line, "expected a count"))?,
                    parse_f64(line, toggle)?,
                    seed.parse().map_err(|_| err(line, "expected a seed"))?,
                );
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    reason: format!("unknown directive {other:?}"),
                })
            }
        }
    }

    let circuit = builder.build()?;
    let mut channels = Vec::with_capacity(channels_by_name.len());
    for channel in channels_by_name {
        let mut ids = Vec::with_capacity(channel.len());
        for wire_name in channel {
            let id = circuit
                .node_by_name(&wire_name)
                .ok_or_else(|| err(0, "channel references unknown wire"))?;
            ids.push(id);
        }
        channels.push(ids);
    }
    let (count, toggle, seed) = pattern_directive;
    let patterns = PatternSet::random_correlated(circuit.num_drivers(), count, toggle, seed);
    Ok(ProblemInstance {
        name,
        circuit,
        channels,
        geometry,
        patterns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticGenerator;
    use crate::spec::CircuitSpec;

    #[test]
    fn roundtrip_through_text() {
        let spec = CircuitSpec::new("rt", 24, 55).with_seed(17);
        let directive = (
            spec.num_patterns,
            spec.pattern_toggle_probability,
            spec.seed ^ 0x5175_AB1E,
        );
        let inst = SyntheticGenerator::new(spec).generate().unwrap();
        let text = write_instance(&inst, directive);
        let parsed = parse_instance(&text).unwrap();
        assert_eq!(parsed.name, "rt");
        assert_eq!(parsed.circuit.num_gates(), inst.circuit.num_gates());
        assert_eq!(parsed.circuit.num_wires(), inst.circuit.num_wires());
        assert_eq!(parsed.circuit.num_drivers(), inst.circuit.num_drivers());
        assert_eq!(parsed.channels.len(), inst.channels.len());
        assert_eq!(parsed.circuit.num_edges(), inst.circuit.num_edges());
        // Wire lengths survive the roundtrip.
        for id in inst.circuit.wire_ids() {
            let name = &inst.circuit.node(id).name;
            let pid = parsed.circuit.node_by_name(name).unwrap();
            assert!((inst.wire_length(id) - parsed.wire_length(pid)).abs() < 1e-9);
        }
    }

    #[test]
    fn parses_a_tiny_hand_written_netlist() {
        let text = "\
# tiny
circuit tiny
driver in0 100.0
gate g0 nand
gate g1 inv
wire w0 50.0
wire w1 60.0
wire w2 70.0
connect in0 w0
connect w0 g0
connect g0 w1
connect w1 g1
connect g1 w2
output w2 5.0
channel w0 w1 w2
geometry 15.0 0.5 0.02
patterns 16 0.3 7
";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.circuit.num_gates(), 2);
        assert_eq!(inst.circuit.num_wires(), 3);
        assert_eq!(inst.channels.len(), 1);
        assert_eq!(inst.channels[0].len(), 3);
        assert!((inst.geometry.pitch - 15.0).abs() < 1e-12);
        assert_eq!(inst.patterns.len(), 16);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let bad_directive = "circuit x\nbogus line here\n";
        match parse_instance(bad_directive) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_number = "circuit x\ndriver in0 notanumber\n";
        assert!(matches!(
            parse_instance(bad_number),
            Err(NetlistError::Parse { line: 2, .. })
        ));
        let unknown_ref = "circuit x\ndriver in0 10\nwire w0 5\nconnect in0 w9\n";
        assert!(matches!(
            parse_instance(unknown_ref),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_gate_kind_is_rejected() {
        let text = "circuit x\ngate g0 nandxor\n";
        assert!(matches!(
            parse_instance(text),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }
}
