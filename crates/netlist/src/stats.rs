//! Structural statistics of a circuit, used in experiment reports.

use ncgws_circuit::{CircuitGraph, TopologicalOrder};
use serde::{Deserialize, Serialize};

/// Summary statistics of a circuit's structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of gates.
    pub num_gates: usize,
    /// Number of wires.
    pub num_wires: usize,
    /// Number of input drivers.
    pub num_drivers: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of edges in the circuit graph.
    pub num_edges: usize,
    /// Longest source-to-sink path length in edges.
    pub depth: usize,
    /// Average gate fan-in.
    pub avg_gate_fanin: f64,
    /// Maximum gate fan-in.
    pub max_gate_fanin: usize,
    /// Average fan-out over gates and drivers.
    pub avg_fanout: f64,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &CircuitGraph) -> Self {
        let topo = TopologicalOrder::of(circuit);
        let gate_fanins: Vec<usize> = circuit.gate_ids().map(|g| circuit.fanin(g).len()).collect();
        let num_gates = gate_fanins.len();
        let avg_gate_fanin = if num_gates == 0 {
            0.0
        } else {
            gate_fanins.iter().sum::<usize>() as f64 / num_gates as f64
        };
        let max_gate_fanin = gate_fanins.iter().copied().max().unwrap_or(0);
        let fanout_sources: Vec<usize> = circuit
            .node_ids()
            .filter(|&id| circuit.is_stage_root(id))
            .map(|id| circuit.fanout(id).len())
            .collect();
        let avg_fanout = if fanout_sources.is_empty() {
            0.0
        } else {
            fanout_sources.iter().sum::<usize>() as f64 / fanout_sources.len() as f64
        };
        CircuitStats {
            num_gates,
            num_wires: circuit.num_wires(),
            num_drivers: circuit.num_drivers(),
            num_outputs: circuit.primary_output_drivers().len(),
            num_edges: circuit.num_edges(),
            depth: topo.longest_path_len(circuit),
            avg_gate_fanin,
            max_gate_fanin,
            avg_fanout,
        }
    }

    /// Total number of sizable components.
    pub fn total_components(&self) -> usize {
        self.num_gates + self.num_wires
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticGenerator;
    use crate::spec::CircuitSpec;

    #[test]
    fn stats_of_a_generated_circuit() {
        let inst = SyntheticGenerator::new(CircuitSpec::new("s", 50, 110).with_seed(1))
            .generate()
            .unwrap();
        let stats = CircuitStats::of(&inst.circuit);
        assert_eq!(stats.num_gates, 50);
        assert_eq!(stats.num_wires, 110);
        assert_eq!(stats.total_components(), 160);
        assert!(stats.num_outputs >= 2);
        assert!(stats.avg_gate_fanin >= 1.0);
        assert!(stats.max_gate_fanin >= 1);
        assert!(stats.depth >= 3);
        assert!(stats.num_edges > stats.total_components());
    }
}
