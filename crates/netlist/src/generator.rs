//! Reproducible synthetic benchmark generation.
//!
//! The generator produces a combinational circuit with an **exact** gate and
//! wire count, the substitution for the ISCAS85 netlists documented in
//! `DESIGN.md`. Every wire is a two-pin connection (driver→gate or
//! gate→gate or gate→primary-output), which matches the paper's roughly
//! 2-wires-per-gate ratio. Structure highlights:
//!
//! * bounded gate fan-in with a random spread,
//! * locality-biased source selection (reconvergent fan-out, realistic depth),
//! * every non-output gate is guaranteed a fanout,
//! * wires are grouped into routing channels for the coupling model,
//! * all randomness is drawn from a seeded [`ChaCha8Rng`], so instances are
//!   fully reproducible.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ncgws_circuit::{CircuitBuilder, GateKind};
use ncgws_waveform::PatternSet;

use crate::error::NetlistError;
use crate::instance::{ChannelGeometry, ProblemInstance};
use crate::spec::CircuitSpec;

/// One gate input source in the intermediate representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceRef {
    Driver(usize),
    Gate(usize),
}

/// Synthetic circuit generator.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    spec: CircuitSpec,
}

impl SyntheticGenerator {
    /// Creates a generator for the given specification.
    pub fn new(spec: CircuitSpec) -> Self {
        SyntheticGenerator { spec }
    }

    /// The specification this generator uses.
    pub fn spec(&self) -> &CircuitSpec {
        &self.spec
    }

    /// Generates the problem instance.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleSpec`] when the requested counts
    /// cannot be realized (e.g. fewer wires than gates), or a
    /// [`NetlistError::Circuit`] error if the assembled netlist fails
    /// validation (which would indicate a generator bug).
    pub fn generate(&self) -> Result<ProblemInstance, NetlistError> {
        let spec = &self.spec;
        let num_gates = spec.num_gates;
        let num_wires = spec.num_wires;
        let num_drivers = spec.num_drivers();
        let num_outputs = spec.num_outputs().min(num_gates.saturating_sub(1)).max(1);

        if num_gates == 0 {
            return Err(NetlistError::InfeasibleSpec {
                reason: "at least one gate required".into(),
            });
        }
        if num_wires < num_gates + num_outputs {
            return Err(NetlistError::InfeasibleSpec {
                reason: format!(
                    "{num_wires} wires cannot feed {num_gates} gates and {num_outputs} outputs"
                ),
            });
        }

        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);

        // ---- 1. Fan-in budget: exactly `num_wires - num_outputs` input wires.
        let input_wire_budget = num_wires - num_outputs;
        let mut fanin = vec![1usize; num_gates];
        let mut extra = input_wire_budget - num_gates;
        // Distribute the extra inputs, respecting max_fanin where possible.
        let mut attempts = 0usize;
        while extra > 0 {
            let k = rng.gen_range(0..num_gates);
            if fanin[k] < spec.max_fanin || attempts > 20 * num_gates {
                fanin[k] += 1;
                extra -= 1;
            }
            attempts += 1;
        }

        // ---- 2. Choose sources gate by gate (IR only).
        // The last `num_outputs` gates are the designated primary outputs.
        let first_output_gate = num_gates - num_outputs;
        let mut inputs: Vec<Vec<SourceRef>> = vec![Vec::new(); num_gates];
        let mut gate_fanout = vec![0usize; num_gates];
        let mut driver_fanout = vec![0usize; num_drivers];
        let mut unused: Vec<usize> = Vec::new(); // non-output gates with no fanout yet

        // Under the *unbounded* locality window (`usize::MAX` — see
        // `CircuitSpec::locality_window`) the eager fanout guarantee below
        // is skipped: consuming one `unused` gate per step keeps that pool
        // near-empty, which forces gate `k` to source from gate `k − 1` and
        // produces a chain (logic depth ≈ gate count) no matter how wide
        // the window is. Wide mode instead sources uniformly from all
        // earlier gates — logarithmic depth — and promotes any gate left
        // without fanout to an extra primary output afterwards (the
        // wire-count compensation below keeps the totals exact). The gate
        // is the sentinel value only — a finite window, however large,
        // keeps the historical generation path bit for bit (a `>=
        // num_gates` test would silently flip small default-window circuits
        // into wide mode and break seed reproducibility).
        let wide = self.spec.locality_window == usize::MAX;
        for k in 0..num_gates {
            for slot in 0..fanin[k] {
                let source = if !wide && slot == 0 && !unused.is_empty() {
                    // Guarantee every non-output gate eventually drives something.
                    let pick = rng.gen_range(0..unused.len().min(4));
                    let idx = unused.len() - 1 - pick;
                    SourceRef::Gate(unused.swap_remove(idx))
                } else if k == 0 || rng.gen_bool(self.driver_probability(k, first_output_gate)) {
                    SourceRef::Driver(rng.gen_range(0..num_drivers))
                } else {
                    // Locality-biased choice among earlier non-output gates.
                    let limit = k.min(first_output_gate);
                    if limit == 0 {
                        SourceRef::Driver(rng.gen_range(0..num_drivers))
                    } else {
                        let window = self.spec.locality_window.max(1).min(limit);
                        let lo = limit - window;
                        SourceRef::Gate(rng.gen_range(lo..limit))
                    }
                };
                match source {
                    SourceRef::Driver(d) => driver_fanout[d] += 1,
                    SourceRef::Gate(g) => gate_fanout[g] += 1,
                }
                inputs[k].push(source);
            }
            if k < first_output_gate {
                unused.push(k);
            }
        }

        // ---- 3. Any still-unused non-output gate becomes an extra primary
        // output; compensate by trimming one removable input wire each so the
        // total wire count stays exact. Wide mode maintains no eager
        // guarantee, so it promotes exactly the gates that truly ended up
        // without fanout (the historical pool is kept verbatim otherwise —
        // existing seeds must reproduce bit for bit).
        let extra_outputs: Vec<usize> = if wide {
            unused
                .into_iter()
                .filter(|&g| gate_fanout[g] == 0)
                .collect()
        } else {
            unused
        };
        for _ in &extra_outputs {
            let mut removed = false;
            'outer: for k in (0..num_gates).rev() {
                if inputs[k].len() < 2 {
                    continue;
                }
                for pos in 0..inputs[k].len() {
                    let removable = match inputs[k][pos] {
                        SourceRef::Driver(d) => driver_fanout[d] >= 2,
                        SourceRef::Gate(g) => gate_fanout[g] >= 2,
                    };
                    if removable {
                        match inputs[k].remove(pos) {
                            SourceRef::Driver(d) => driver_fanout[d] -= 1,
                            SourceRef::Gate(g) => gate_fanout[g] -= 1,
                        }
                        removed = true;
                        break 'outer;
                    }
                }
            }
            if !removed {
                return Err(NetlistError::InfeasibleSpec {
                    reason: "could not balance wire count; increase wires per gate".into(),
                });
            }
        }

        // Make sure every driver drives something: steal a slot if needed.
        for (d, fanout) in driver_fanout.iter_mut().enumerate() {
            if *fanout == 0 {
                // Replace a gate-sourced input whose source has other fanout.
                'search: for gate_inputs in inputs.iter_mut() {
                    for slot in gate_inputs.iter_mut() {
                        if let SourceRef::Gate(g) = *slot {
                            if gate_fanout[g] >= 2 {
                                gate_fanout[g] -= 1;
                                *slot = SourceRef::Driver(d);
                                *fanout += 1;
                                break 'search;
                            }
                        }
                    }
                }
            }
        }

        // ---- 4. Emit the circuit.
        let mut builder = CircuitBuilder::new(spec.technology);
        let mut rng_geo = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
        let drivers: Vec<_> = (0..num_drivers)
            .map(|d| {
                let rd = rng_geo
                    .gen_range(spec.driver_resistance_range.0..=spec.driver_resistance_range.1);
                builder.add_driver(&format!("in{d}"), rd)
            })
            .collect::<Result<_, _>>()?;
        let gates: Vec<_> = (0..num_gates)
            .map(|k| {
                let kind = *[
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Inv,
                    GateKind::Xor,
                    GateKind::Buf,
                    GateKind::Xnor,
                ]
                .choose(&mut rng_geo)
                .expect("non-empty gate kind list");
                builder.add_gate(&format!("g{k}"), kind)
            })
            .collect::<Result<_, _>>()?;

        let mut wire_names: Vec<String> = Vec::with_capacity(num_wires);
        let mut wire_counter = 0usize;
        let mut new_wire =
            |builder: &mut CircuitBuilder,
             rng_geo: &mut ChaCha8Rng,
             wire_names: &mut Vec<String>|
             -> Result<(ncgws_circuit::builder::BuildNode, String), NetlistError> {
                let name = format!("w{wire_counter}");
                wire_counter += 1;
                let length = rng_geo.gen_range(spec.wire_length_range.0..=spec.wire_length_range.1);
                let node = builder.add_wire(&name, length)?;
                wire_names.push(name.clone());
                Ok((node, name))
            };

        for (k, gate_inputs) in inputs.iter().enumerate() {
            for &source in gate_inputs {
                let (wire, _) = new_wire(&mut builder, &mut rng_geo, &mut wire_names)?;
                let src = match source {
                    SourceRef::Driver(d) => drivers[d],
                    SourceRef::Gate(g) => gates[g],
                };
                builder.connect(src, wire)?;
                builder.connect(wire, gates[k])?;
            }
        }

        // Primary outputs: designated output gates plus the extra ones.
        let mut output_gates: Vec<usize> = (first_output_gate..num_gates).collect();
        output_gates.extend(extra_outputs.iter().copied());
        for &g in &output_gates {
            let (wire, _) = new_wire(&mut builder, &mut rng_geo, &mut wire_names)?;
            let load = rng_geo.gen_range(spec.output_load_range.0..=spec.output_load_range.1);
            builder.connect(gates[g], wire)?;
            builder.connect_output(wire, load)?;
        }

        debug_assert_eq!(
            wire_names.len(),
            num_wires,
            "wire budget must balance exactly"
        );
        let circuit = builder.build()?;

        // ---- 5. Routing channels over the wires.
        let mut channel_wires: Vec<ncgws_circuit::NodeId> = wire_names
            .iter()
            .map(|name| circuit.node_by_name(name).expect("wire exists"))
            .collect();
        channel_wires.shuffle(&mut rng_geo);
        let channels: Vec<Vec<ncgws_circuit::NodeId>> = channel_wires
            .chunks(spec.channel_size.max(2))
            .map(|chunk| chunk.to_vec())
            .collect();

        // ---- 6. Input patterns.
        let patterns = PatternSet::random_correlated(
            circuit.num_drivers(),
            spec.num_patterns,
            spec.pattern_toggle_probability,
            spec.seed ^ 0x5175_AB1E,
        );

        let geometry = ChannelGeometry {
            pitch: spec.channel_pitch,
            overlap_fraction: spec.overlap_fraction,
            unit_fringing: spec.technology.coupling_fringing_per_um,
        };

        Ok(ProblemInstance {
            name: spec.name.clone(),
            circuit,
            channels,
            geometry,
            patterns,
        })
    }

    /// Probability that an input slot is fed by a primary-input driver rather
    /// than an earlier gate; higher for early gates so the logic cone starts
    /// wide and narrows with depth.
    fn driver_probability(&self, gate_index: usize, first_output_gate: usize) -> f64 {
        if first_output_gate == 0 {
            return 1.0;
        }
        let progress = gate_index as f64 / first_output_gate as f64;
        (0.35 * (1.0 - progress) + 0.08).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(gates: usize, wires: usize, seed: u64) -> ProblemInstance {
        SyntheticGenerator::new(CircuitSpec::new("test", gates, wires).with_seed(seed))
            .generate()
            .expect("generation succeeds")
    }

    #[test]
    fn exact_component_counts() {
        for &(g, w) in &[(20usize, 45usize), (50, 100), (214, 426), (546, 1064)] {
            let inst = generate(g, w, 11);
            assert_eq!(inst.circuit.num_gates(), g, "gates for ({g},{w})");
            assert_eq!(inst.circuit.num_wires(), w, "wires for ({g},{w})");
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = generate(60, 130, 3);
        let b = generate(60, 130, 3);
        assert_eq!(a.circuit.num_nodes(), b.circuit.num_nodes());
        assert_eq!(a.channels, b.channels);
        assert_eq!(a.patterns, b.patterns);
        let c = generate(60, 130, 4);
        assert!(a.channels != c.channels || a.patterns != c.patterns);
    }

    /// Wide mode is opt-in via the `usize::MAX` sentinel only: any finite
    /// window — even one far beyond the gate count — keeps the historical
    /// generation path, so small circuits under the default window can
    /// never silently flip into wide mode. (For a circuit whose gate count
    /// is below both windows the effective clamp `window.min(limit)` makes
    /// the draws identical, so the two finite specs generate the same
    /// netlist.)
    #[test]
    fn finite_windows_keep_the_historical_path() {
        let small_default = generate(30, 70, 5);
        let small_huge_window = SyntheticGenerator::new(
            CircuitSpec::new("test", 30, 70)
                .with_seed(5)
                .with_locality_window(1_000_000),
        )
        .generate()
        .expect("generation succeeds");
        assert_eq!(
            small_default.channels, small_huge_window.channels,
            "a finite window beyond the gate count must not change generation"
        );
        assert_eq!(
            small_default.circuit.num_nodes(),
            small_huge_window.circuit.num_nodes()
        );
        assert_eq!(
            small_default.circuit.num_edges(),
            small_huge_window.circuit.num_edges()
        );

        // The sentinel does change the shape: wide mode produces a
        // different (shallower) structure.
        let wide = SyntheticGenerator::new(
            CircuitSpec::new("test", 30, 70)
                .with_seed(5)
                .with_locality_window(usize::MAX),
        )
        .generate()
        .expect("generation succeeds");
        assert_eq!(wide.circuit.num_gates(), 30);
        assert_eq!(wide.circuit.num_wires(), 70);
        assert!(
            wide.channels != small_default.channels
                || wide.circuit.num_edges() != small_default.circuit.num_edges(),
            "the sentinel must actually select wide mode"
        );
    }

    #[test]
    fn infeasible_specs_are_rejected() {
        let too_few_wires = CircuitSpec::new("bad", 100, 90);
        assert!(matches!(
            SyntheticGenerator::new(too_few_wires).generate(),
            Err(NetlistError::InfeasibleSpec { .. })
        ));
        let no_gates = CircuitSpec::new("bad", 0, 10);
        assert!(SyntheticGenerator::new(no_gates).generate().is_err());
    }

    #[test]
    fn channels_cover_every_wire_exactly_once() {
        let inst = generate(80, 170, 9);
        let mut seen = std::collections::HashSet::new();
        for channel in &inst.channels {
            for &w in channel {
                assert!(inst.circuit.node(w).kind.is_wire());
                assert!(seen.insert(w), "wire listed twice");
            }
        }
        assert_eq!(seen.len(), inst.circuit.num_wires());
    }

    #[test]
    fn patterns_match_driver_count() {
        let inst = generate(40, 90, 5);
        assert_eq!(inst.patterns.num_inputs(), inst.circuit.num_drivers());
        assert!(!inst.patterns.is_empty());
    }

    #[test]
    fn wire_lengths_are_within_the_requested_range() {
        let spec = CircuitSpec::new("t", 30, 70).with_seed(2);
        let range = spec.wire_length_range;
        let inst = SyntheticGenerator::new(spec).generate().unwrap();
        for id in inst.circuit.wire_ids() {
            let len = inst.wire_length(id);
            assert!(
                len >= range.0 - 1e-9 && len <= range.1 + 1e-9,
                "length {len}"
            );
        }
    }

    #[test]
    fn generated_circuit_is_simulatable() {
        use ncgws_waveform::LogicSimulator;
        let inst = generate(30, 70, 8);
        let sim = LogicSimulator::new(&inst.circuit);
        let trace = sim.simulate(&inst.patterns);
        assert_eq!(trace.num_steps(), inst.patterns.len());
    }

    #[test]
    fn generated_circuit_has_reasonable_depth() {
        use ncgws_circuit::TopologicalOrder;
        let inst = generate(200, 420, 13);
        let depth = TopologicalOrder::of(&inst.circuit).longest_path_len(&inst.circuit);
        assert!(depth > 6, "depth {depth} too shallow");
        assert!(depth < 2 * 200, "depth {depth} suspiciously deep");
    }
}
