//! Specification of a synthetic benchmark circuit.

use ncgws_circuit::Technology;
use serde::{Deserialize, Serialize};

/// Everything the [`SyntheticGenerator`](crate::SyntheticGenerator) needs to
/// produce a benchmark circuit: the target gate and wire counts plus the
/// geometric and electrical knobs.
///
/// The defaults are chosen so that a generated circuit lands in the same
/// order of magnitude as the paper's Table 1 columns (noise in the tens of
/// pF, delay around a nanosecond, power in the hundreds of mW, area in the
/// tens of thousands of µm² for the larger circuits) when every component
/// starts at unit size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitSpec {
    /// Benchmark name (used in reports).
    pub name: String,
    /// Exact number of gates to generate.
    pub num_gates: usize,
    /// Exact number of wires to generate.
    pub num_wires: usize,
    /// RNG seed; every derived quantity is reproducible from it.
    pub seed: u64,
    /// Technology parameters.
    pub technology: Technology,
    /// Maximum gate fan-in.
    pub max_fanin: usize,
    /// Wire length range (µm).
    pub wire_length_range: (f64, f64),
    /// Driver resistance range (Ω).
    pub driver_resistance_range: (f64, f64),
    /// Primary-output load range (fF).
    pub output_load_range: (f64, f64),
    /// Number of wires routed per channel (adjacent-coupling group).
    pub channel_size: usize,
    /// Track pitch within a channel (µm, centre to centre).
    pub channel_pitch: f64,
    /// Fraction of the shorter wire's length that overlaps its neighbor.
    pub overlap_fraction: f64,
    /// Number of primary-input vectors simulated for switching similarity.
    pub num_patterns: usize,
    /// Probability that a primary input toggles between consecutive vectors.
    pub pattern_toggle_probability: f64,
    /// Width of the locality window gate inputs are drawn from: gate `k`
    /// sources its non-driver inputs from the last `locality_window`
    /// earlier gates. Finite windows produce deep, chain-like circuits
    /// (logic depth grows linearly with the gate count); the sentinel
    /// `usize::MAX` switches the generator into *wide* mode — inputs drawn
    /// uniformly from **all** earlier gates and no eager fanout guarantee —
    /// producing shallow circuits whose logic depth grows only
    /// logarithmically, the shape that exercises level-parallel
    /// traversals. Every finite value (including the default, 64, and
    /// values exceeding the gate count) keeps the historical generation
    /// path, so existing seeds reproduce bit for bit.
    pub locality_window: usize,
}

impl CircuitSpec {
    /// Creates a specification with the given name and component counts and
    /// the default knobs.
    pub fn new(name: impl Into<String>, num_gates: usize, num_wires: usize) -> Self {
        CircuitSpec {
            name: name.into(),
            num_gates,
            num_wires,
            seed: 0xDAC_1999,
            technology: Technology::dac99(),
            max_fanin: 4,
            wire_length_range: (25.0, 400.0),
            driver_resistance_range: (80.0, 250.0),
            output_load_range: (4.0, 20.0),
            channel_size: 10,
            channel_pitch: 11.0,
            overlap_fraction: 0.6,
            num_patterns: 128,
            pattern_toggle_probability: 0.35,
            locality_window: 64,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the technology.
    pub fn with_technology(mut self, technology: Technology) -> Self {
        self.technology = technology;
        self
    }

    /// Sets the number of wires per routing channel.
    pub fn with_channel_size(mut self, channel_size: usize) -> Self {
        self.channel_size = channel_size.max(1);
        self
    }

    /// Sets the number of simulated input vectors.
    pub fn with_num_patterns(mut self, num_patterns: usize) -> Self {
        self.num_patterns = num_patterns;
        self
    }

    /// Sets the locality window gate inputs are drawn from (see
    /// [`locality_window`](Self::locality_window); clamped to at least 1).
    pub fn with_locality_window(mut self, window: usize) -> Self {
        self.locality_window = window.max(1);
        self
    }

    /// Total number of sizable components requested.
    pub fn total_components(&self) -> usize {
        self.num_gates + self.num_wires
    }

    /// The number of input drivers the generator will create
    /// (roughly 1 driver per 12 gates, at least 3).
    pub fn num_drivers(&self) -> usize {
        (self.num_gates / 12).max(3)
    }

    /// The number of designated primary-output gates
    /// (roughly 1 per 20 gates, at least 2).
    pub fn num_outputs(&self) -> usize {
        (self.num_gates / 20).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters() {
        let spec = CircuitSpec::new("t", 100, 200)
            .with_seed(7)
            .with_channel_size(5)
            .with_num_patterns(32);
        assert_eq!(spec.name, "t");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.channel_size, 5);
        assert_eq!(spec.num_patterns, 32);
        assert_eq!(spec.total_components(), 300);
    }

    #[test]
    fn derived_counts_scale_with_gates() {
        let small = CircuitSpec::new("s", 40, 80);
        assert_eq!(small.num_drivers(), 3);
        assert_eq!(small.num_outputs(), 2);
        let big = CircuitSpec::new("b", 2400, 4800);
        assert_eq!(big.num_drivers(), 200);
        assert_eq!(big.num_outputs(), 120);
    }

    #[test]
    fn channel_size_is_at_least_one() {
        let spec = CircuitSpec::new("t", 10, 20).with_channel_size(0);
        assert_eq!(spec.channel_size, 1);
    }
}
