//! Error type for benchmark generation and netlist I/O.

use std::fmt;

use ncgws_circuit::CircuitError;

/// Errors produced while generating or parsing benchmark circuits.
#[derive(Debug)]
pub enum NetlistError {
    /// The specification is not realizable (e.g. too few wires for the gates).
    InfeasibleSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// The underlying circuit construction failed.
    Circuit(CircuitError),
    /// A parse error in the text netlist format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An I/O error while reading or writing a netlist file.
    Io(std::io::Error),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InfeasibleSpec { reason } => {
                write!(f, "infeasible circuit specification: {reason}")
            }
            NetlistError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
            NetlistError::Parse { line, reason } => {
                write!(f, "netlist parse error at line {line}: {reason}")
            }
            NetlistError::Io(e) => write!(f, "netlist i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Circuit(e) => Some(e),
            NetlistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for NetlistError {
    fn from(e: CircuitError) -> Self {
        NetlistError::Circuit(e)
    }
}

impl From<std::io::Error> for NetlistError {
    fn from(e: std::io::Error) -> Self {
        NetlistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = NetlistError::InfeasibleSpec {
            reason: "too few wires".into(),
        };
        assert!(e.to_string().contains("too few wires"));
        assert!(e.source().is_none());
        let e = NetlistError::from(CircuitError::NoDrivers);
        assert!(e.source().is_some());
        let e = NetlistError::Parse {
            line: 3,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
