//! Benchmark circuits for the ncgws workspace.
//!
//! The paper evaluates on the ISCAS85 benchmark suite (c432 … c7552, between
//! 640 and 9 656 components). Those netlists — and in particular the wire
//! geometry and test patterns the paper pairs them with — are not
//! redistributable inputs of this reproduction, so this crate provides the
//! substitution documented in `DESIGN.md`:
//!
//! * [`CircuitSpec`] / [`SyntheticGenerator`] — a reproducible random
//!   generator of combinational circuits with an exact gate and wire count,
//!   bounded fan-in, reconvergent fan-out, routing-channel wire groups and
//!   randomized wire geometry;
//! * [`iscas`] — presets matching the ten Table 1 circuits' gate/wire counts;
//! * [`mod@format`] — a small text netlist format (writer + parser) so externally
//!   prepared circuits can be dropped in;
//! * [`ProblemInstance`] — the bundle the optimizer consumes: the circuit,
//!   its routing channels and geometry, and the primary-input patterns;
//! * [`stats`] — structural statistics used by the experiment reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod format;
pub mod generator;
pub mod instance;
pub mod iscas;
pub mod spec;
pub mod stats;

pub use error::NetlistError;
pub use generator::SyntheticGenerator;
pub use instance::{ChannelGeometry, ProblemInstance};
pub use iscas::{iscas85_spec, table1_specs, xl_spec, xl_specs, xl_wide_spec};
pub use ncgws_waveform::PatternSet;
pub use spec::CircuitSpec;
pub use stats::CircuitStats;
