//! Presets matching the paper's Table 1 benchmark circuits.
//!
//! The paper evaluates on ten ISCAS85 circuits. The real netlists are not
//! part of this reproduction (see DESIGN.md, substitution 1); these presets
//! drive the synthetic generator with exactly the gate and wire counts the
//! paper reports per circuit, so the scaling experiments (Table 1,
//! Figure 10) cover the same size range — 640 to 9 656 components.

use crate::spec::CircuitSpec;

/// `(name, gates, wires)` for the ten circuits of Table 1, in the paper's
/// row order.
pub const TABLE1_CIRCUITS: [(&str, usize, usize); 10] = [
    ("c1355", 546, 1064),
    ("c1908", 880, 1498),
    ("c2670", 1193, 2076),
    ("c3540", 1669, 2939),
    ("c432", 214, 426),
    ("c499", 514, 928),
    ("c5315", 2307, 4386),
    ("c6288", 2416, 4800),
    ("c7552", 3512, 6144),
    ("c880", 383, 729),
];

/// The specification for one of the Table 1 circuits, by name
/// (e.g. `"c432"`). Returns `None` for unknown names.
///
/// The per-circuit seed is derived from the name so every circuit is distinct
/// but reproducible.
pub fn iscas85_spec(name: &str) -> Option<CircuitSpec> {
    TABLE1_CIRCUITS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(n, gates, wires)| {
            let seed = 0xDAC_1999_u64
                ^ n.bytes()
                    .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
            CircuitSpec::new(n, gates, wires).with_seed(seed)
        })
}

/// Specifications for all ten Table 1 circuits, in the paper's row order.
pub fn table1_specs() -> Vec<CircuitSpec> {
    TABLE1_CIRCUITS
        .iter()
        .map(|(n, _, _)| iscas85_spec(n).expect("known name"))
        .collect()
}

/// Specifications for all ten circuits, sorted by total component count
/// (used by the Figure 10 scaling study).
pub fn table1_specs_by_size() -> Vec<CircuitSpec> {
    let mut specs = table1_specs();
    specs.sort_by_key(CircuitSpec::total_components);
    specs
}

/// The XL synthetic tier: circuits one to two orders of magnitude beyond
/// the paper's largest (c7552, 9 656 components), keeping its roughly
/// 1 gate : 2 wires shape. Used by the end-to-end solve-schedule benchmarks
/// (`ogws_schedule`) and the `table1 --json` schedule section; the pattern
/// count is reduced because stage-1 logic simulation scales with
/// `patterns × gates` and is not what these tiers measure.
pub fn xl_spec(total_components: usize) -> CircuitSpec {
    let gates = total_components / 3;
    let wires = total_components - gates;
    let seed = 0xDAC_1999_u64 ^ (total_components as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    CircuitSpec::new(format!("xl{}", total_components / 1000), gates, wires)
        .with_seed(seed)
        .with_num_patterns(16)
}

/// The XL tier sizes: 1k, 10k and 100k components.
pub fn xl_specs() -> Vec<CircuitSpec> {
    [1_000, 10_000, 100_000].map(xl_spec).to_vec()
}

/// The *wide* XL tier: the same component counts as [`xl_spec`] but with an
/// unbounded locality window, so gate inputs are drawn uniformly from all
/// earlier gates and the logic depth grows only logarithmically. Where
/// [`xl_spec`] produces deep, chain-like circuits (~0.6 topological levels
/// per node — the worst case for any dependency-ordered traversal), this
/// shape concentrates the nodes in a few hundred wide levels, which is what
/// the level-parallel solve paths (`ncgws-core`'s `ParallelPolicy::Level`)
/// scale on. Used by the `threads` scaling benchmarks.
pub fn xl_wide_spec(total_components: usize) -> CircuitSpec {
    let mut spec = xl_spec(total_components).with_locality_window(usize::MAX);
    spec.name = format!("xlw{}", total_components / 1000);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_circuits_are_known() {
        assert_eq!(TABLE1_CIRCUITS.len(), 10);
        for (name, gates, wires) in TABLE1_CIRCUITS {
            let spec = iscas85_spec(name).expect("known");
            assert_eq!(spec.num_gates, gates);
            assert_eq!(spec.num_wires, wires);
            assert_eq!(spec.name, name);
        }
        assert!(iscas85_spec("c9999").is_none());
    }

    #[test]
    fn totals_match_the_paper_range() {
        let specs = table1_specs_by_size();
        assert_eq!(specs.first().unwrap().total_components(), 640);
        assert_eq!(specs.last().unwrap().total_components(), 9656);
        // Sorted ascending.
        for pair in specs.windows(2) {
            assert!(pair[0].total_components() <= pair[1].total_components());
        }
    }

    #[test]
    fn seeds_differ_between_circuits() {
        let a = iscas85_spec("c432").unwrap();
        let b = iscas85_spec("c499").unwrap();
        assert_ne!(a.seed, b.seed);
        // But are stable run to run.
        assert_eq!(a.seed, iscas85_spec("c432").unwrap().seed);
    }

    #[test]
    fn c7552_matches_the_paper_headline_numbers() {
        // The abstract quotes "6144 wires and 3512 gates" for c7552.
        let spec = iscas85_spec("c7552").unwrap();
        assert_eq!(spec.num_gates, 3512);
        assert_eq!(spec.num_wires, 6144);
    }
}
