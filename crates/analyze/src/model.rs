//! Function-scoped structure recovered from the token stream: attribute
//! spans, function spans with matched bodies, and `#[cfg(test)]` regions.
//!
//! This is deliberately not a parser — no expressions, no types. The
//! passes only need to answer three questions about a token index: *which
//! function body is it in*, *is it test-only code*, and *what attributes
//! are attached to the item that follows*. Brace matching over the lexed
//! token stream (strings and comments already stripped) answers all three
//! without a grammar.

use crate::lexer::{lex, Lexed, Tok, TokKind};

/// One `#[…]` attribute: token span (inclusive `#`, inclusive `]`) plus
/// the classification the passes care about.
#[derive(Debug, Clone)]
pub struct Attr {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    /// `#[cfg(test)]` or any `cfg` containing `test` (e.g. `cfg(all(test, …))`).
    pub is_cfg_test: bool,
    /// `#[test]` (or an attribute path ending in `test`).
    pub is_test_attr: bool,
    /// `#[cfg(feature = "parallel")]` without a `not(…)`.
    pub is_cfg_parallel: bool,
    /// `#[cfg(not(feature = "parallel"))]`.
    pub is_cfg_not_parallel: bool,
}

/// One `fn` item with a matched body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token index of the body `{` (== `body_end` for bodyless trait fns).
    pub body_start: usize,
    /// Token index of the matching `}`.
    pub body_end: usize,
    pub line: u32,
    /// Inside `#[cfg(test)]` / `mod tests`, or annotated `#[test]`.
    pub is_test: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
}

/// Everything the passes need about one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path with `/` separators.
    pub path: String,
    pub lexed: Lexed,
    pub attrs: Vec<Attr>,
    pub fns: Vec<FnSpan>,
    /// Token ranges (inclusive start, inclusive end) of test-only regions:
    /// `#[cfg(test)] mod …` bodies and `mod tests { … }` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileModel {
    /// Lexes and models one file.
    pub fn build(path: String, src: &str) -> FileModel {
        let lexed = lex(src);
        let attrs = find_attrs(&lexed.toks);
        let test_ranges = find_test_ranges(&lexed.toks, &attrs);
        let fns = find_fns(&lexed.toks, &attrs, &test_ranges);
        FileModel {
            path,
            lexed,
            attrs,
            fns,
            test_ranges,
        }
    }

    /// The innermost function containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_start < i && i < f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }

    /// Whether token index `i` lies in test-only code.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi)
            || self.enclosing_fn(i).is_some_and(|f| f.is_test)
    }

    /// Whether any comment mentioning `needle` starts within
    /// `[line.saturating_sub(window), line]`.
    pub fn comment_near(&self, line: u32, window: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(window);
        self.lexed
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains(needle))
    }

    /// Whether any comment exists on `line` or the line above (the
    /// panic-path "indexing is fine if justified" rule).
    pub fn any_comment_adjacent(&self, line: u32) -> bool {
        let lo = line.saturating_sub(1);
        self.lexed
            .comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= line)
    }
}

/// Finds the matching close token for the open delimiter at `open`
/// (`toks[open]` must be `{`, `[` or `(`). Returns `toks.len() - 1` when
/// unbalanced (degrade, never panic).
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ('{', '}'),
        "[" => ('[', ']'),
        "(" => ('(', ')'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn find_attrs(toks: &[Tok]) -> Vec<Attr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let end = matching_close(toks, i + 1);
            let body = &toks[i + 2..end];
            let has = |s: &str| body.iter().any(|t| t.is_ident(s));
            let is_cfg = body.first().is_some_and(|t| t.is_ident("cfg"));
            let feature_parallel = {
                // feature = "parallel" as a token run.
                body.windows(3).any(|w| {
                    w[0].is_ident("feature")
                        && w[1].is_punct('=')
                        && w[2].kind == TokKind::Str
                        && w[2].text.contains("parallel")
                })
            };
            out.push(Attr {
                start: i,
                end,
                line: toks[i].line,
                is_cfg_test: is_cfg && has("test"),
                is_test_attr: body.len() == 1 && body[0].is_ident("test"),
                is_cfg_parallel: is_cfg && feature_parallel && !has("not"),
                is_cfg_not_parallel: is_cfg && feature_parallel && has("not"),
            });
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Walks back over a contiguous run of attributes ending right before
/// token `item`: returns the attrs whose spans chain up to `item`.
pub fn attrs_before(attrs: &[Attr], mut item: usize) -> Vec<&Attr> {
    let mut out = Vec::new();
    while let Some(a) = attrs.iter().find(|a| a.end + 1 == item) {
        out.push(a);
        item = a.start;
    }
    out
}

fn find_test_ranges(toks: &[Tok], attrs: &[Attr]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("mod") || i + 1 >= toks.len() {
            continue;
        }
        let name = &toks[i + 1];
        if name.kind != TokKind::Ident {
            continue;
        }
        let cfg_test = attrs_before(attrs, i).iter().any(|a| a.is_cfg_test);
        if !(cfg_test || name.text == "tests") {
            continue;
        }
        if i + 2 < toks.len() && toks[i + 2].is_punct('{') {
            out.push((i, matching_close(toks, i + 2)));
        }
    }
    out
}

fn find_fns(toks: &[Tok], attrs: &[Attr], test_ranges: &[(usize, usize)]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") || i + 1 >= toks.len() {
            continue;
        }
        let name = &toks[i + 1];
        if name.kind != TokKind::Ident {
            // `fn(` in a function-pointer type.
            continue;
        }
        // Find the body `{` at bracket/paren depth 0, or `;` (no body).
        let mut depth = 0isize;
        let mut body_start = None;
        for (j, u) in toks.iter().enumerate().skip(i + 2) {
            if u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && u.is_punct('{') {
                body_start = Some(j);
                break;
            } else if depth == 0 && u.is_punct(';') {
                break;
            }
        }
        let Some(body_start) = body_start else {
            continue;
        };
        let body_end = matching_close(toks, body_start);
        let fn_attrs = attrs_before(attrs, preceding_keywords_start(toks, i));
        let is_test = fn_attrs.iter().any(|a| a.is_test_attr)
            || test_ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi);
        let is_unsafe = i > 0 && toks[i - 1].is_ident("unsafe");
        out.push(FnSpan {
            name: name.text.clone(),
            kw: i,
            body_start,
            body_end,
            line: t.line,
            is_test,
            is_unsafe,
        });
    }
    out
}

/// Walks back from the `fn` keyword over visibility/qualifier tokens
/// (`pub`, `(crate)`, `unsafe`, `const`, `async`, `extern "C"`) so
/// attribute chains attach through them.
fn preceding_keywords_start(toks: &[Tok], mut i: usize) -> usize {
    loop {
        if i == 0 {
            return i;
        }
        let prev = &toks[i - 1];
        if prev.is_ident("pub")
            || prev.is_ident("unsafe")
            || prev.is_ident("const")
            || prev.is_ident("async")
            || prev.is_ident("extern")
            || prev.kind == TokKind::Str
        {
            i -= 1;
            continue;
        }
        // `pub(crate)` / `pub(super)`: step over the parenthesized group.
        if prev.is_punct(')') {
            let mut depth = 0isize;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j >= 1 && toks[j - 1].is_ident("pub") {
                i = j - 1;
                continue;
            }
        }
        return i;
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;

    const SRC: &str = r#"
pub struct S;

#[cfg(feature = "parallel")]
use std::thread;

impl S {
    /// Docs.
    #[inline]
    pub(crate) unsafe fn kernel(&self, i: usize) -> f64 {
        let x = [1.0, 2.0];
        x[i]
    }

    pub fn safe(&self) -> f64 {
        0.0
    }
}

#[cfg(not(feature = "parallel"))]
fn fallback() {}

#[cfg(test)]
mod tests {
    #[test]
    fn a_test() {
        let v: Vec<u32> = Vec::new();
        assert!(v.is_empty());
    }
}
"#;

    #[test]
    fn finds_fns_with_bodies_and_qualifiers() {
        let m = FileModel::build("s.rs".into(), SRC);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["kernel", "safe", "fallback", "a_test"]);
        let kernel = &m.fns[0];
        assert!(kernel.is_unsafe);
        assert!(!kernel.is_test);
        assert!(kernel.body_start < kernel.body_end);
    }

    #[test]
    fn cfg_test_mod_marks_contained_fns_as_test() {
        let m = FileModel::build("s.rs".into(), SRC);
        let a_test = m.fns.iter().find(|f| f.name == "a_test").unwrap();
        assert!(a_test.is_test);
        assert!(m.in_test_code(a_test.body_start + 1));
        let safe = m.fns.iter().find(|f| f.name == "safe").unwrap();
        assert!(!m.in_test_code(safe.body_start + 1));
    }

    #[test]
    fn attr_classification() {
        let m = FileModel::build("s.rs".into(), SRC);
        assert!(m.attrs.iter().any(|a| a.is_cfg_parallel));
        assert!(m.attrs.iter().any(|a| a.is_cfg_not_parallel));
        assert!(m.attrs.iter().any(|a| a.is_cfg_test));
        // The cfg(not(parallel)) attr is not counted as cfg(parallel).
        assert!(m
            .attrs
            .iter()
            .all(|a| !(a.is_cfg_parallel && a.is_cfg_not_parallel)));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() { fn inner() { let x = 1; } }";
        let m = FileModel::build("n.rs".into(), src);
        let x_idx = m.lexed.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(m.enclosing_fn(x_idx).unwrap().name, "inner");
    }
}
