//! Findings, stable fingerprints, and the committed baseline.
//!
//! A finding carries its human-facing location (`file:line`) *and* a
//! line-number-free fingerprint, so the committed baseline survives
//! unrelated edits above a finding. The fingerprint is
//! `pass|file|context|detail@ordinal` where `context` is the enclosing
//! function (or item) and `ordinal` numbers repeated identical findings
//! within one context in token order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass identifier (`no-alloc`, `unsafe-audit`, `panic-path`,
    /// `feature-gate`).
    pub pass: &'static str,
    /// Repo-relative path.
    pub file: String,
    pub line: u32,
    /// Enclosing function or item name (`-` at module level).
    pub context: String,
    /// What was matched (e.g. `clone`, `unsafe-block`, `indexing`).
    pub detail: String,
    /// 1-based occurrence number of this (pass, file, context, detail)
    /// combination, assigned in token order.
    pub ordinal: u32,
    pub message: String,
}

impl Finding {
    /// The baseline fingerprint.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}@{}",
            self.pass, self.file, self.context, self.detail, self.ordinal
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// Accumulates findings and assigns ordinals.
#[derive(Debug, Default)]
pub struct Sink {
    pub findings: Vec<Finding>,
    counters: BTreeMap<(String, String, String, String), u32>,
}

impl Sink {
    pub fn push(
        &mut self,
        pass: &'static str,
        file: &str,
        line: u32,
        context: &str,
        detail: &str,
        message: String,
    ) {
        let counter = self
            .counters
            .entry((
                pass.to_string(),
                file.to_string(),
                context.to_string(),
                detail.to_string(),
            ))
            .or_insert(0);
        *counter += 1;
        self.findings.push(Finding {
            pass,
            file: file.to_string(),
            line,
            context: context.to_string(),
            detail: detail.to_string(),
            ordinal: *counter,
            message,
        });
    }
}

/// The committed baseline: a set of accepted fingerprints.
#[derive(Debug, Default)]
pub struct Baseline {
    pub keys: BTreeSet<String>,
}

impl Baseline {
    /// Parses baseline text: one fingerprint per line; `#` comments and
    /// blank lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { keys }
    }

    pub fn contains(&self, finding: &Finding) -> bool {
        self.keys.contains(&finding.key())
    }

    /// Baseline entries that no longer match any finding (stale — the
    /// accepted problem was fixed, so the entry should be removed).
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a str> {
        let live: BTreeSet<String> = findings.iter().map(Finding::key).collect();
        self.keys
            .iter()
            .filter(|k| !live.contains(*k))
            .map(String::as_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_distinguish_repeated_findings() {
        let mut sink = Sink::default();
        sink.push("no-alloc", "a.rs", 3, "f", "clone", "clone in f".into());
        sink.push("no-alloc", "a.rs", 9, "f", "clone", "clone in f".into());
        sink.push("no-alloc", "a.rs", 9, "g", "clone", "clone in g".into());
        let keys: Vec<String> = sink.findings.iter().map(Finding::key).collect();
        assert_eq!(
            keys,
            vec![
                "no-alloc|a.rs|f|clone@1",
                "no-alloc|a.rs|f|clone@2",
                "no-alloc|a.rs|g|clone@1"
            ]
        );
    }

    #[test]
    fn baseline_roundtrip_and_staleness() {
        let mut sink = Sink::default();
        sink.push("panic-path", "s.rs", 1, "f", "unwrap", "m".into());
        let baseline = Baseline::parse(
            "# accepted\npanic-path|s.rs|f|unwrap@1\npanic-path|s.rs|gone|unwrap@1\n",
        );
        assert!(baseline.contains(&sink.findings[0]));
        assert_eq!(
            baseline.stale(&sink.findings),
            vec!["panic-path|s.rs|gone|unwrap@1"]
        );
    }
}
