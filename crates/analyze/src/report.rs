//! Machine-readable unsafe-inventory report (hand-rolled JSON writer —
//! this crate is dependency-free and the vendored serde lives on the other
//! side of the workspace boundary on purpose).

use crate::passes::unsafe_audit::UnsafeSite;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the unsafe inventory as a JSON document:
/// `{"total": N, "documented": M, "sites": [{file, line, kind, context,
/// documented}, …]}`.
pub fn unsafe_report_json(sites: &[UnsafeSite]) -> String {
    let documented = sites.iter().filter(|s| s.documented).count();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"total\": {},\n  \"documented\": {},\n  \"sites\": [\n",
        sites.len(),
        documented
    ));
    for (i, s) in sites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"context\": \"{}\", \
             \"documented\": {}}}{}\n",
            escape(&s.file),
            s.line,
            s.kind,
            escape(&s.context),
            s.documented,
            if i + 1 < sites.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_well_formed_and_counts() {
        let sites = vec![
            UnsafeSite {
                file: "a.rs".into(),
                line: 3,
                kind: "block",
                context: "f\"q\"".into(),
                documented: true,
            },
            UnsafeSite {
                file: "b.rs".into(),
                line: 9,
                kind: "fn",
                context: "g".into(),
                documented: false,
            },
        ];
        let json = unsafe_report_json(&sites);
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"documented\": 1"));
        assert!(json.contains("f\\\"q\\\""));
        // Balanced brackets, trailing-comma-free.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  ]"));
    }
}
