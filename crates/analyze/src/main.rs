//! `ncgws-analyze` — the workspace lint driver.
//!
//! ```text
//! cargo run -p ncgws-analyze --                  # report all findings
//! cargo run -p ncgws-analyze -- --deny          # CI gate: nonzero exit on
//!                                               # non-baselined findings or
//!                                               # stale baseline entries
//! cargo run -p ncgws-analyze -- --write-baseline  # accept current findings
//! cargo run -p ncgws-analyze -- --unsafe-report UNSAFE_REPORT.json
//! ```
//!
//! The baseline lives at `ANALYZE_BASELINE.txt` in the workspace root: one
//! fingerprint per line, `#` comments allowed. Accepting a finding means
//! adding its fingerprint there (with a comment saying *why* it is
//! acceptable) — `--write-baseline` regenerates the file mechanically.

use std::path::PathBuf;
use std::process::ExitCode;

use ncgws_analyze::findings::Baseline;
use ncgws_analyze::report::unsafe_report_json;

const BASELINE_FILE: &str = "ANALYZE_BASELINE.txt";

struct Options {
    deny: bool,
    write_baseline: bool,
    root: PathBuf,
    baseline: PathBuf,
    unsafe_report: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut deny = false;
    let mut write_baseline = false;
    let mut root = None;
    let mut baseline = None;
    let mut unsafe_report = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--write-baseline" => write_baseline = true,
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?)),
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?))
            }
            "--unsafe-report" => {
                unsafe_report = Some(PathBuf::from(
                    args.next().ok_or("--unsafe-report needs a path")?,
                ))
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ncgws-analyze [--deny] [--write-baseline] [--root DIR] \
                            [--baseline FILE] [--unsafe-report FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let root = root.unwrap_or_else(ncgws_analyze::workspace_root);
    let baseline = baseline.unwrap_or_else(|| root.join(BASELINE_FILE));
    Ok(Options {
        deny,
        write_baseline,
        root,
        baseline,
        unsafe_report,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = match ncgws_analyze::analyze(&opts.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "ncgws-analyze: failed to read sources under {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.unsafe_report {
        let json = unsafe_report_json(&analysis.unsafe_sites);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("ncgws-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "unsafe inventory: {} sites ({} documented) -> {}",
            analysis.unsafe_sites.len(),
            analysis
                .unsafe_sites
                .iter()
                .filter(|s| s.documented)
                .count(),
            path.display()
        );
    }

    if opts.write_baseline {
        let mut text = String::from(
            "# ncgws-analyze accepted findings.\n\
             # One fingerprint per line: pass|file|context|detail@ordinal.\n\
             # Regenerate with: cargo run -p ncgws-analyze -- --write-baseline\n\
             # Keep a comment above each acceptance saying WHY it is fine.\n",
        );
        for f in &analysis.findings {
            text.push_str(&format!(
                "# {}:{}: {}\n{}\n",
                f.file,
                f.line,
                f.message,
                f.key()
            ));
        }
        if let Err(e) = std::fs::write(&opts.baseline, text) {
            eprintln!(
                "ncgws-analyze: cannot write {}: {e}",
                opts.baseline.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} accepted findings to {}",
            analysis.findings.len(),
            opts.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    let new: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| !baseline.contains(f))
        .collect();
    let stale = baseline.stale(&analysis.findings);

    for f in &new {
        println!("{f}");
    }
    for key in &stale {
        println!("stale baseline entry (finding fixed — remove it or run --write-baseline): {key}");
    }
    println!(
        "ncgws-analyze: {} files, {} findings ({} baselined, {} new, {} stale baseline \
         entries), {} unsafe sites ({} documented)",
        analysis.files,
        analysis.findings.len(),
        analysis.findings.len() - new.len(),
        new.len(),
        stale.len(),
        analysis.unsafe_sites.len(),
        analysis
            .unsafe_sites
            .iter()
            .filter(|s| s.documented)
            .count(),
    );
    if opts.deny && (!new.is_empty() || !stale.is_empty()) {
        eprintln!(
            "ncgws-analyze: failing (--deny): fix the findings above or accept them in {}",
            BASELINE_FILE
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
