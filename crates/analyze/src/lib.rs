//! # ncgws-analyze — workspace invariant lints
//!
//! The ncgws workspace rests on conventions no compiler checks:
//!
//! * hot sweep/kernel paths are **allocation-free** (PR 1/4/6) — the
//!   [`passes::no_alloc`] pass lints the functions declared in
//!   [`manifest::HOT_PATHS`];
//! * every `unsafe` disjoint-index write is justified by the level-partition
//!   invariant — [`passes::unsafe_audit`] inventories all `unsafe` sites
//!   and requires adjacent `// SAFETY:` / `# Safety` documentation;
//! * the serving layer **never panics** outside injected faults (PR 9) —
//!   [`passes::panic_path`] denies `unwrap`/`expect`/`panic!`/unjustified
//!   indexing in non-test `crates/serve` code;
//! * `#[cfg(feature = "parallel")]` code keeps a **sequential fallback** —
//!   [`passes::feature_gate`] checks gated early-returns and items.
//!
//! Everything is built on a hand-rolled lexer ([`lexer`]) and a
//! brace-matching structural model ([`model`]); there are no dependencies,
//! so the analyzer works in the offline build environment. Findings carry
//! `file:line` plus a line-number-free fingerprint; the committed baseline
//! (`ANALYZE_BASELINE.txt`) suppresses accepted findings, and
//! `cargo run -p ncgws-analyze -- --deny` exits nonzero on anything new.

pub mod findings;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod passes {
    pub mod feature_gate;
    pub mod no_alloc;
    pub mod panic_path;
    pub mod unsafe_audit;
}
pub mod report;

use std::path::{Path, PathBuf};

use findings::{Finding, Sink};
use model::FileModel;
use passes::unsafe_audit::UnsafeSite;

/// The result of analyzing a workspace tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (file, line, pass).
    pub findings: Vec<Finding>,
    /// Every `unsafe` occurrence (documented or not).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files analyzed.
    pub files: usize,
}

/// Directories under the root that contain first-party sources.
const SCAN_DIRS: &[&str] = &["src", "crates", "examples", "tests"];

/// Path fragments that are never analyzed, matched against the
/// *root-relative* path — so the lint-fixture mini-trees under
/// `crates/analyze/tests/fixtures/` are skipped when the repo is the root,
/// yet fully scanned when a fixture tree is itself passed as the root.
const SKIP_FRAGMENTS: &[&str] = &["/vendor/", "/target/", "/fixtures/"];

/// Collects the repo-relative paths of all first-party `.rs` files under
/// `root`, sorted for deterministic output.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        walk(root, &root.join(dir), &mut out);
    }
    out.sort();
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let as_str = format!("/{}/", rel.display()).replace('\\', "/");
        if SKIP_FRAGMENTS.iter().any(|f| as_str.contains(f)) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Analyzes every first-party file under `root` with all four passes.
pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
    let files = collect_files(root);
    let mut sink = Sink::default();
    let mut unsafe_sites = Vec::new();
    let mut count = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        let model = FileModel::build(rel.clone(), &src);
        analyze_model(&model, &mut sink, &mut unsafe_sites);
        count += 1;
    }
    let mut findings = sink.findings;
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.pass).cmp(&(b.file.as_str(), b.line, b.pass)));
    Ok(Analysis {
        findings,
        unsafe_sites,
        files: count,
    })
}

/// Runs all applicable passes over one modeled file. Public so fixture
/// tests can drive the exact production pass wiring on synthetic files.
pub fn analyze_model(model: &FileModel, sink: &mut Sink, unsafe_sites: &mut Vec<UnsafeSite>) {
    if let Some((_, hot_fns)) = manifest::HOT_PATHS.iter().find(|(f, _)| *f == model.path) {
        passes::no_alloc::run(model, hot_fns, sink);
    }
    unsafe_sites.extend(passes::unsafe_audit::run(model, sink));
    if model.path.starts_with("crates/serve/src/") {
        passes::panic_path::run(model, sink);
    }
    passes::feature_gate::run(model, sink);
}

/// Locates the workspace root: the current directory when it holds a
/// `[workspace]` manifest, else the compile-time crate location's
/// grandparent (`crates/analyze/../..`).
pub fn workspace_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        if std::fs::read_to_string(cwd.join("Cargo.toml"))
            .map(|t| t.contains("[workspace]"))
            .unwrap_or(false)
        {
            return cwd;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .components()
        .collect()
}
