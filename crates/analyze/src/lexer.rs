//! A hand-rolled Rust lexer: just enough of the language to drive
//! token-level lint passes reliably.
//!
//! The passes in this crate never need types or name resolution, but they
//! *do* need to know exactly what is code and what is not: a `clone(` inside
//! a string literal, a `unwrap()` inside a nested block comment, or an
//! apostrophe that starts a lifetime rather than a char literal must never
//! produce (or mask) a finding. The lexer therefore handles the full
//! literal grammar — raw strings with arbitrary `#` fences, byte and raw
//! byte strings, nested `/* /* */ */` comments, `'a` lifetimes vs `'a'`
//! chars, raw identifiers — while treating everything it does not care
//! about as single-character punctuation.
//!
//! Comments are not discarded: they are collected in a side list with their
//! line numbers, because the unsafe-audit and panic-path passes key off
//! adjacent `// SAFETY:` / justification comments.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers, with the `r#`
    /// prefix stripped so `r#fn` compares equal to `fn` — the passes only
    /// match names).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`), text without the quote.
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character (`{`, `}`, `!`, `[`, …).
    Punct,
}

/// One token: kind, source text and 1-based line number.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment (line or block), with the line it *starts* on and the line
/// it ends on. `text` keeps the comment markers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// The result of lexing one file: the token stream (comments and
/// whitespace stripped) plus the side list of comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Invalid input never panics: the
/// lexer degrades to single-character punctuation tokens.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while !cur.eof() {
        let b = cur.peek(0);
        let line = cur.line;
        // Whitespace.
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if b == b'/' && cur.peek(1) == b'/' {
            let start = cur.pos;
            while !cur.eof() && cur.peek(0) != b'\n' {
                cur.bump();
            }
            out.comments.push(Comment {
                text: cur.text_from(start),
                line,
                end_line: cur.line,
            });
            continue;
        }
        if b == b'/' && cur.peek(1) == b'*' {
            let start = cur.pos;
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while !cur.eof() && depth > 0 {
                if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            out.comments.push(Comment {
                text: cur.text_from(start),
                line,
                end_line: cur.line,
            });
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"…", r#"…"#,
        // br##"…"##, b"…", b'…', r#ident.
        if is_ident_start(b) {
            if let Some(tok) = try_lex_prefixed_literal(&mut cur, line) {
                out.toks.push(tok);
                continue;
            }
            let start = cur.pos;
            while !cur.eof() && is_ident_continue(cur.peek(0)) {
                cur.bump();
            }
            let mut text = cur.text_from(start);
            // Raw identifier `r#name`: `#` broke the scan after `r` — stitch
            // the name back and compare by it.
            if text == "r" && cur.peek(0) == b'#' && is_ident_start(cur.peek(1)) {
                cur.bump();
                let name_start = cur.pos;
                while !cur.eof() && is_ident_continue(cur.peek(0)) {
                    cur.bump();
                }
                text = cur.text_from(name_start);
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            let start = cur.pos;
            while !cur.eof() && is_ident_continue(cur.peek(0)) {
                cur.bump();
            }
            // Fractional part: `1.5`, but not `1..2` or `1.max()`.
            if cur.peek(0) == b'.' && cur.peek(1).is_ascii_digit() {
                cur.bump();
                while !cur.eof() && is_ident_continue(cur.peek(0)) {
                    cur.bump();
                }
            }
            // Exponent sign: `1e-9` lexes `1e` then `-` then `9` above
            // unless we stitch it here.
            if (cur.peek(0) == b'+' || cur.peek(0) == b'-')
                && matches!(cur.src.get(cur.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                && cur.peek(1).is_ascii_digit()
            {
                cur.bump();
                while !cur.eof() && is_ident_continue(cur.peek(0)) {
                    cur.bump();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: cur.text_from(start),
                line,
            });
            continue;
        }
        // Plain strings.
        if b == b'"' {
            let start = cur.pos;
            cur.bump();
            lex_quoted_body(&mut cur, b'"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: cur.text_from(start),
                line,
            });
            continue;
        }
        // Apostrophe: lifetime or char literal.
        if b == b'\'' {
            let start = cur.pos;
            cur.bump();
            if cur.peek(0) == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{…}'.
                lex_quoted_body(&mut cur, b'\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: cur.text_from(start),
                    line,
                });
            } else if is_ident_start(cur.peek(0)) || cur.peek(0).is_ascii_digit() {
                // Could be 'a' (char) or 'a / 'static (lifetime): decide by
                // whether a closing quote follows the first scalar.
                let content_len = utf8_len(cur.peek(0));
                if cur.peek(content_len) == b'\'' {
                    for _ in 0..=content_len {
                        cur.bump();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: cur.text_from(start),
                        line,
                    });
                } else {
                    while !cur.eof() && is_ident_continue(cur.peek(0)) {
                        cur.bump();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: cur.text_from(start + 1),
                        line,
                    });
                }
            } else {
                // Non-identifier char literal: '+', ' ', '"' …
                lex_quoted_body(&mut cur, b'\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: cur.text_from(start),
                    line,
                });
            }
            continue;
        }
        // Everything else: single-character punctuation.
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: (b as char).to_string(),
            line,
        });
    }
    out
}

/// Consumes the body of a quoted literal (after the opening quote) up to
/// and including the closing `delim`, honoring backslash escapes.
fn lex_quoted_body(cur: &mut Cursor<'_>, delim: u8) {
    while !cur.eof() {
        let b = cur.bump();
        if b == b'\\' {
            if !cur.eof() {
                cur.bump();
            }
        } else if b == delim {
            break;
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// At an identifier-start position, tries to lex a raw string (`r"…"`,
/// `r#"…"#`), raw byte string (`br##"…"##`), byte string (`b"…"`) or byte
/// char (`b'…'`). Returns `None` when the position is a plain identifier
/// (including raw identifiers `r#name`, handled by the caller).
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>, line: u32) -> Option<Tok> {
    let b0 = cur.peek(0);
    let (prefix_len, allow_hashes) = match (b0, cur.peek(1)) {
        (b'r', _) => (1, true),
        (b'b', b'r') => (2, true),
        (b'b', _) => (1, false),
        _ => return None,
    };
    // Count fence hashes after the prefix.
    let mut hashes = 0usize;
    if allow_hashes {
        while cur.peek(prefix_len + hashes) == b'#' {
            hashes += 1;
        }
    }
    let quote = cur.peek(prefix_len + hashes);
    if quote == b'"' {
        if !allow_hashes && hashes > 0 {
            return None;
        }
        // `r#ident` (raw identifier) has hashes but no quote — here the
        // quote is present, so this really is a raw/byte string.
        let start = cur.pos;
        for _ in 0..(prefix_len + hashes + 1) {
            cur.bump();
        }
        if hashes == 0 && allow_hashes {
            // r"…": no escapes, ends at the first quote.
            while !cur.eof() && cur.bump() != b'"' {}
        } else if hashes == 0 {
            // b"…": escapes apply.
            lex_quoted_body(cur, b'"');
        } else {
            // r#…#"…"#…#: ends at `"` followed by `hashes` hashes.
            'outer: while !cur.eof() {
                if cur.bump() == b'"' {
                    for h in 0..hashes {
                        if cur.peek(h) != b'#' {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break;
                }
            }
        }
        return Some(Tok {
            kind: TokKind::Str,
            text: cur.text_from(start),
            line,
        });
    }
    if b0 == b'b' && prefix_len == 1 && hashes == 0 && quote == b'\'' {
        let start = cur.pos;
        cur.bump();
        cur.bump();
        lex_quoted_body(cur, b'\'');
        return Some(Tok {
            kind: TokKind::Char,
            text: cur.text_from(start),
            line,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        let toks = kinds("pub fn f(x: u32) -> u32 { x }");
        assert_eq!(toks[0], (TokKind::Ident, "pub".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[2], (TokKind::Ident, "f".into()));
        assert!(toks.iter().any(|t| t.0 == TokKind::Punct && t.1 == "{"));
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments_do_not_leak_tokens() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        let names: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comments_are_collected_with_lines() {
        let lexed = lex("x\n// SAFETY: fine\ny");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("SAFETY"));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes_and_braces() {
        let toks = kinds(r####"let s = r#"quote " and { unwrap() } inside"#; next"####);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Str && t.1.contains("unwrap")));
        // Nothing inside the raw string became a token.
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
        assert_eq!(toks.last().unwrap(), &(TokKind::Ident, "next".into()));
    }

    #[test]
    fn double_hash_raw_string_ends_at_matching_fence() {
        let toks = kinds(r####"r##"inner "# not the end"## tail"####);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"b"bytes" br#"raw bytes"# b'x'"###);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::Char);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Lifetime)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Char)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = kinds("&'static str; &'_ u8; let u = '_';");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Lifetime)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["static", "_"]);
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "'_'"));
    }

    #[test]
    fn raw_identifiers_compare_by_name() {
        let toks = kinds("r#fn r#unwrap normal");
        assert_eq!(toks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokKind::Ident, "unwrap".into()));
        assert_eq!(toks[2], (TokKind::Ident, "normal".into()));
    }

    #[test]
    fn strings_with_escapes_do_not_end_early() {
        let toks = kinds(r#"let s = "quote \" unwrap() inside"; after"#);
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
        assert_eq!(toks.last().unwrap(), &(TokKind::Ident, "after".into()));
    }

    #[test]
    fn numeric_literals() {
        let toks = kinds("0x1F 1_000 1.5e-9 2.0f64 1..3 1.max(2)");
        assert_eq!(toks[0], (TokKind::Num, "0x1F".into()));
        assert_eq!(toks[1], (TokKind::Num, "1_000".into()));
        assert_eq!(toks[2], (TokKind::Num, "1.5e-9".into()));
        assert_eq!(toks[3], (TokKind::Num, "2.0f64".into()));
        // Ranges and method calls on literals do not swallow the dot.
        assert_eq!(toks[4], (TokKind::Num, "1".into()));
        assert!(toks.iter().any(|t| t.1 == "max"));
    }

    #[test]
    fn char_literal_quote_and_quoted_punct() {
        let toks = kinds(r"let q = '\''; let sp = ' '; let plus = '+';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Char)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(chars, vec![r"'\''", "' '", "'+'"]);
    }
}
