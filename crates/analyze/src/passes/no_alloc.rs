//! Pass `no-alloc`: heap-allocation idioms inside declared hot paths.
//!
//! The sweep/kernel functions listed in [`crate::manifest::HOT_PATHS`]
//! were made allocation-free in PRs 1/4/6 and the engine's performance
//! contract depends on them staying that way. This pass flags the
//! allocation idioms a refactor most plausibly reintroduces:
//! `Vec::new` / `Vec::with_capacity` / `vec![]`, `Box::new`,
//! `String::from` / `format!`, `.clone()` / `.to_vec()` / `.to_owned()` /
//! `.to_string()` / `.collect()`, and the std collection constructors.
//!
//! A manifest entry naming a function that no longer exists produces a
//! `manifest-stale` finding so renames cannot silently drop coverage.

use crate::findings::Sink;
use crate::lexer::TokKind;
use crate::model::FileModel;

pub const PASS: &str = "no-alloc";

/// Allocating methods flagged when called (`.clone()`, `iter.collect()` …).
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// Allocating associated constructors (`Type::method`).
const ALLOC_CONSTRUCTORS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("Box", &["new", "from", "leak"]),
    ("String", &["new", "from", "with_capacity"]),
    ("Rc", &["new"]),
    ("Arc", &["new"]),
    ("BTreeSet", &["new", "from"]),
    ("BTreeMap", &["new", "from"]),
    ("HashMap", &["new", "with_capacity", "from"]),
    ("HashSet", &["new", "with_capacity", "from"]),
    ("VecDeque", &["new", "with_capacity", "from"]),
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Runs the pass over one file with its manifest function list.
pub fn run(model: &FileModel, hot_fns: &[&str], sink: &mut Sink) {
    let toks = &model.lexed.toks;
    for name in hot_fns {
        if !model.fns.iter().any(|f| f.name == *name && !f.is_test) {
            sink.push(
                PASS,
                &model.path,
                1,
                "-",
                &format!("manifest-stale:{name}"),
                format!(
                    "hot-path manifest lists `{name}` but no such function exists in this file \
                     (renamed or removed? update crates/analyze/src/manifest.rs)"
                ),
            );
        }
    }
    for f in &model.fns {
        if f.is_test || !hot_fns.contains(&f.name.as_str()) {
            continue;
        }
        for i in (f.body_start + 1)..f.body_end {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = toks.get(i + 1);
            let next_is = |c: char| next.is_some_and(|n| n.is_punct(c));
            // `.clone()` / `.collect::<…>()` / `Clone::clone(x)`.
            if ALLOC_METHODS.contains(&t.text.as_str())
                && (next_is('(')
                    || (next_is(':') && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))))
            {
                sink.push(
                    PASS,
                    &model.path,
                    t.line,
                    &f.name,
                    &t.text.clone(),
                    format!(
                        "`{}()` allocates on the hot path `{}` (declared allocation-free in the \
                         hot-path manifest)",
                        t.text, f.name
                    ),
                );
                continue;
            }
            // `Vec::new(…)` and friends.
            if next_is(':')
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
            {
                let method = &toks[i + 3].text;
                if ALLOC_CONSTRUCTORS
                    .iter()
                    .any(|(ty, ms)| *ty == t.text && ms.contains(&method.as_str()))
                {
                    sink.push(
                        PASS,
                        &model.path,
                        t.line,
                        &f.name,
                        &format!("{}::{}", t.text, method),
                        format!(
                            "`{}::{}` allocates on the hot path `{}`",
                            t.text, method, f.name
                        ),
                    );
                    continue;
                }
            }
            // `vec![…]` / `format!(…)`.
            if ALLOC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                sink.push(
                    PASS,
                    &model.path,
                    t.line,
                    &f.name,
                    &format!("{}!", t.text),
                    format!("`{}!` allocates on the hot path `{}`", t.text, f.name),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run_on(src: &str, hot: &[&str]) -> Vec<String> {
        let model = FileModel::build("x.rs".into(), src);
        let mut sink = Sink::default();
        run(&model, hot, &mut sink);
        sink.findings.iter().map(|f| f.detail.clone()).collect()
    }

    #[test]
    fn flags_the_listed_idioms_only_in_hot_fns() {
        let src = r#"
fn hot(xs: &[f64]) -> f64 {
    let v = xs.to_vec();
    let w: Vec<f64> = xs.iter().copied().collect();
    let b = Box::new(1.0);
    let s = format!("{v:?}{w:?}{b}");
    s.len() as f64
}
fn cold() -> Vec<u32> {
    vec![1, 2, 3]
}
"#;
        let details = run_on(src, &["hot"]);
        assert_eq!(details, vec!["to_vec", "collect", "Box::new", "format!"]);
    }

    #[test]
    fn clone_and_vec_macro_and_string_from() {
        let src = r#"
fn hot(v: &Vec<f64>) -> Vec<f64> {
    let a = v.clone();
    let b = vec![0.0; 4];
    let _s = String::from("x");
    a
}
"#;
        let details = run_on(src, &["hot"]);
        assert_eq!(details, vec!["clone", "vec!", "String::from"]);
    }

    #[test]
    fn idioms_inside_strings_and_comments_are_invisible() {
        let src = r##"
fn hot() -> &'static str {
    // calling clone() here would be bad
    /* vec![] too */
    r#"clone() collect() vec![]"#
}
"##;
        assert!(run_on(src, &["hot"]).is_empty());
    }

    #[test]
    fn stale_manifest_entries_are_reported() {
        let details = run_on("fn present() {}", &["present", "renamed_away"]);
        assert_eq!(details, vec!["manifest-stale:renamed_away"]);
    }

    #[test]
    fn test_functions_are_excluded() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn hot() -> Vec<u32> { vec![1] }
}
"#;
        // `hot` exists only under cfg(test): the non-test manifest entry is
        // stale AND the test body is not linted.
        let details = run_on(src, &["hot"]);
        assert_eq!(details, vec!["manifest-stale:hot"]);
    }
}
