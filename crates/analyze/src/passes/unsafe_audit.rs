//! Pass `unsafe-audit`: inventory every `unsafe` occurrence and require an
//! adjacent safety comment naming the invariant.
//!
//! The level-parallel kernels (PR 5/6) rest on `unsafe` disjoint-index
//! writes whose soundness is the strictly-upward level-partition
//! invariant. This pass (a) inventories every `unsafe` block, `unsafe fn`,
//! `unsafe impl` and `unsafe trait` in the workspace into a
//! machine-readable report, and (b) flags any occurrence without an
//! adjacent justification: a `// SAFETY:` comment within a few lines for
//! blocks and impls, or a `# Safety` doc section (or `SAFETY:` comment)
//! in the doc block above for `unsafe fn` declarations.

use crate::findings::Sink;
use crate::model::FileModel;

pub const PASS: &str = "unsafe-audit";

/// Lines above an `unsafe` block/impl in which a `// SAFETY:` comment
/// counts as adjacent.
const BLOCK_WINDOW: u32 = 5;
/// Lines above an `unsafe fn` in which a `# Safety` doc section counts as
/// adjacent (doc blocks with examples can get long).
const FN_WINDOW: u32 = 60;

/// One inventoried `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// `block`, `fn`, `impl` or `trait`.
    pub kind: &'static str,
    /// Enclosing function (for blocks) or declared item name.
    pub context: String,
    /// Whether an adjacent safety justification was found.
    pub documented: bool,
}

/// Runs the pass over one file; returns the inventory entries.
pub fn run(model: &FileModel, sink: &mut Sink) -> Vec<UnsafeSite> {
    let toks = &model.lexed.toks;
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let next = toks.get(i + 1);
        let (kind, context) = if next.is_some_and(|n| n.is_ident("fn")) {
            let name = toks
                .get(i + 2)
                .map(|n| n.text.clone())
                .unwrap_or_else(|| "?".into());
            ("fn", name)
        } else if next.is_some_and(|n| n.is_ident("impl")) {
            ("impl", impl_target(toks, i + 2))
        } else if next.is_some_and(|n| n.is_ident("trait")) {
            let name = toks
                .get(i + 2)
                .map(|n| n.text.clone())
                .unwrap_or_else(|| "?".into());
            ("trait", name)
        } else {
            let ctx = model
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "-".into());
            ("block", ctx)
        };
        let documented = match kind {
            "fn" => {
                model.comment_near(t.line, FN_WINDOW, "# Safety")
                    || model.comment_near(t.line, FN_WINDOW, "SAFETY")
            }
            _ => model.comment_near(t.line, BLOCK_WINDOW, "SAFETY"),
        };
        if !documented {
            sink.push(
                PASS,
                &model.path,
                t.line,
                &context,
                &format!("unsafe-{kind}"),
                match kind {
                    "fn" => format!(
                        "`unsafe fn {context}` has no `# Safety` doc section or `// SAFETY:` \
                         comment naming the invariant callers must uphold"
                    ),
                    "block" => format!(
                        "`unsafe` block in `{context}` has no adjacent `// SAFETY:` comment \
                         naming the invariant that makes it sound"
                    ),
                    _ => format!("`unsafe {kind} {context}` has no adjacent `// SAFETY:` comment"),
                },
            );
        }
        sites.push(UnsafeSite {
            file: model.path.clone(),
            line: t.line,
            kind,
            context,
            documented,
        });
    }
    sites
}

/// Best-effort name of an `unsafe impl` target (`Send for Foo` → `Foo`).
fn impl_target(toks: &[crate::lexer::Tok], mut i: usize) -> String {
    // Skip generics `<…>`.
    let mut depth = 0usize;
    let mut last_ident = String::from("?");
    while let Some(t) = toks.get(i) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('{') && depth == 0 {
            break;
        } else if depth == 0 && t.kind == crate::lexer::TokKind::Ident && !t.is_ident("for") {
            last_ident = t.text.clone();
        }
        i += 1;
    }
    last_ident
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run_on(src: &str) -> (Vec<String>, Vec<UnsafeSite>) {
        let model = FileModel::build("u.rs".into(), src);
        let mut sink = Sink::default();
        let sites = run(&model, &mut sink);
        let details: Vec<String> = sink
            .findings
            .iter()
            .map(|f| format!("{}:{}", f.detail, f.context))
            .collect();
        (details, sites)
    }

    #[test]
    fn documented_block_and_fn_pass() {
        let src = r#"
/// Does things.
///
/// # Safety
///
/// `i` must be in bounds.
pub unsafe fn get(p: *const f64, i: usize) -> f64 {
    *p.add(i)
}

fn caller(xs: &[f64]) -> f64 {
    // SAFETY: 0 is in bounds for the non-empty slice.
    unsafe { get(xs.as_ptr(), 0) }
}
"#;
        let (details, sites) = run_on(src);
        assert!(details.is_empty(), "unexpected findings: {details:?}");
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.documented));
    }

    #[test]
    fn undocumented_sites_are_flagged_with_context() {
        let src = r#"
pub unsafe fn bare(p: *const f64) -> f64 { *p }

fn caller(xs: &[f64]) -> f64 {
    unsafe { bare(xs.as_ptr()) }
}

unsafe impl Send for Wrapper {}
"#;
        let (details, sites) = run_on(src);
        assert_eq!(
            details,
            vec![
                "unsafe-fn:bare",
                "unsafe-block:caller",
                "unsafe-impl:Wrapper"
            ]
        );
        assert_eq!(sites.len(), 3);
        assert!(sites.iter().all(|s| !s.documented));
    }

    #[test]
    fn safety_comment_too_far_away_does_not_count_for_blocks() {
        let src = format!(
            "fn f(p: *const u8) -> u8 {{\n    // SAFETY: stale, far away\n{}    unsafe {{ *p }}\n}}",
            "    let _x = 0;\n".repeat(8)
        );
        let (details, _) = run_on(&src);
        assert_eq!(details, vec!["unsafe-block:f"]);
    }

    #[test]
    fn unsafe_in_string_literals_is_not_inventoried() {
        let (details, sites) = run_on(r#"fn f() -> &'static str { "unsafe { }" }"#);
        assert!(details.is_empty());
        assert!(sites.is_empty());
    }
}
