//! Pass `panic-path`: no panicking idioms in non-test serving code.
//!
//! `ncgws-serve` promises (PR 9) that the only panics in a serving process
//! are injected faults — a stray `unwrap()` in the dispatcher would tear
//! down a worker outside the `catch_unwind` contract and turn a recoverable
//! condition into a lost job. This pass denies `.unwrap()` / `.expect()`,
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!`, and slice
//! indexing without a justifying comment, in all non-test code of the
//! files it is pointed at (the serve crate).

use crate::findings::Sink;
use crate::lexer::TokKind;
use crate::model::FileModel;

pub const PASS: &str = "panic-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede `[` without it being an indexing
/// expression (patterns, array expressions, returns of array literals…).
const NON_EXPR_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "match", "if", "while", "else", "move", "as", "dyn",
    "box", "break", "continue", "where", "const", "static",
];

/// Runs the pass over one file (the driver scopes it to `crates/serve`).
pub fn run(model: &FileModel, sink: &mut Sink) {
    let toks = &model.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if model.in_test_code(i) {
            continue;
        }
        // Only lint executable code: require an enclosing function so
        // type-level `[u8; 4]` tokens at module scope are skipped.
        let Some(f) = model.enclosing_fn(i) else {
            continue;
        };
        if f.is_test {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
        // `.unwrap()` / `.expect(…)`.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && next_is('(')
        {
            sink.push(
                PASS,
                &model.path,
                t.line,
                &f.name,
                &t.text.clone(),
                format!(
                    "`.{}()` can panic in non-test serving code (`{}`); return a typed \
                     ServeError/StoreError instead",
                    t.text, f.name
                ),
            );
            continue;
        }
        // `panic!(…)` and friends.
        if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
            sink.push(
                PASS,
                &model.path,
                t.line,
                &f.name,
                &format!("{}!", t.text),
                format!(
                    "`{}!` in non-test serving code (`{}`); serving paths must not panic \
                     outside injected faults",
                    t.text, f.name
                ),
            );
            continue;
        }
        // Indexing `expr[…]` without a justifying comment on the same or
        // previous line. The previous token must end an expression — an
        // identifier, `)`, or `]` — which excludes attributes (`#[…]`),
        // types (`: [u8; 4]`) and slice patterns (`let [a, b] = …`).
        if t.is_punct('[')
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
            && !(toks[i - 1].kind == TokKind::Ident
                && NON_EXPR_KEYWORDS.contains(&toks[i - 1].text.as_str()))
            && !model.any_comment_adjacent(t.line)
        {
            // Skip declarations-as-expressions the heuristic cannot see:
            // an identifier that is a macro name (`matches!…[`) never
            // appears; `if let`-bound arrays do not reach here.
            sink.push(
                PASS,
                &model.path,
                t.line,
                &f.name,
                "indexing",
                format!(
                    "slice/array indexing in non-test serving code (`{}`) without a \
                     justifying comment on this or the previous line; use `.get()` or \
                     document why the index is in range",
                    f.name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run_on(src: &str) -> Vec<String> {
        let model = FileModel::build("crates/serve/src/x.rs".into(), src);
        let mut sink = Sink::default();
        run(&model, &mut sink);
        sink.findings
            .iter()
            .map(|f| format!("{}:{}", f.detail, f.context))
            .collect()
    }

    #[test]
    fn unwrap_expect_and_panic_macros_are_denied() {
        let src = r#"
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("msg");
    if a == b { panic!("boom"); }
    unreachable!()
}
"#;
        assert_eq!(
            run_on(src),
            vec!["unwrap:f", "expect:f", "panic!:f", "unreachable!:f"]
        );
    }

    #[test]
    fn unwrap_like_names_and_non_method_positions_pass() {
        let src = r#"
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap_or(0);
    let b = o.unwrap_or_else(|| 1);
    a + b
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn indexing_needs_a_comment() {
        let src = r#"
fn f(xs: &[u32], i: usize) -> u32 {
    let bad = xs[i];
    // in range: i was validated at submit time
    let good = xs[i];
    bad + good
}
"#;
        assert_eq!(run_on(src), vec!["indexing:f"]);
    }

    #[test]
    fn types_patterns_and_attributes_are_not_indexing() {
        let src = r#"
#[derive(Debug)]
struct S;
fn f(pair: [u32; 2]) -> u32 {
    let [a, b] = pair;
    let v: [u8; 4] = [0; 4];
    a + b + v.len() as u32
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
fn prod(o: Option<u32>) -> Option<u32> { o }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = super::prod(Some(1)).unwrap();
        assert_eq!(v, 1);
    }
}
"#;
        assert!(run_on(src).is_empty());
    }
}
