//! Pass `feature-gate`: `#[cfg(feature = "parallel")]` code must leave a
//! sequential fallback behind.
//!
//! `ncgws_core::par` promises that a build without the `parallel` feature
//! walks the identical chunk grid sequentially — the serial build is the
//! bit-for-bit oracle for the threaded one. That promise has a shape in
//! the source: every parallel-gated *early-return* block (`if let
//! Some(pool) = … { …; return; }`) must be followed by sequential code in
//! the same function, and every parallel-only *item* (fn/mod) must have a
//! `#[cfg(not(feature = "parallel"))]` counterpart of the same name —
//! otherwise a feature-off build either silently does nothing or fails to
//! compile. Purely additive gated statements (no `return`) and gated
//! `use`/fields/impls are fine and skipped.

use crate::findings::Sink;
use crate::lexer::{Tok, TokKind};
use crate::model::{Attr, FileModel};

pub const PASS: &str = "feature-gate";

/// Runs the pass over one file.
pub fn run(model: &FileModel, sink: &mut Sink) {
    let toks = &model.lexed.toks;
    // Names of items gated on cfg(not(feature = "parallel")) — the
    // sequential counterparts.
    let not_items: Vec<String> = model
        .attrs
        .iter()
        .filter(|a| a.is_cfg_not_parallel)
        .filter_map(|a| item_name(toks, &model.attrs, a))
        .collect();
    for a in model.attrs.iter().filter(|a| a.is_cfg_parallel) {
        if model.in_test_code(a.start) {
            continue;
        }
        let j = attachment(toks, &model.attrs, a);
        if let Some(f) = model.enclosing_fn(a.start) {
            // Statement-level gate inside `f`: a gated early-return with
            // nothing after it leaves the feature-off build doing nothing.
            let end = stmt_end(toks, j, f.body_end);
            let has_return = toks[j..=end.min(f.body_end)]
                .iter()
                .any(|t| t.is_ident("return"));
            let has_tail = end + 1 < f.body_end;
            let has_not_sibling = model
                .attrs
                .iter()
                .any(|b| b.is_cfg_not_parallel && f.body_start < b.start && b.end < f.body_end);
            if has_return && !has_tail && !has_not_sibling {
                sink.push(
                    PASS,
                    &model.path,
                    a.line,
                    &f.name,
                    "no-sequential-fallback",
                    format!(
                        "parallel-gated early-return in `{}` has no sequential code after it \
                         and no cfg(not(feature)) sibling: a build without the feature does \
                         nothing here",
                        f.name
                    ),
                );
            }
            continue;
        }
        // Item-level gate: fn and mod need a named sequential counterpart.
        let Some((kw, name)) = item_kind_and_name(toks, j) else {
            continue;
        };
        if (kw == "fn" || kw == "mod") && !not_items.contains(&name) {
            sink.push(
                PASS,
                &model.path,
                a.line,
                &name,
                &format!("parallel-only-{kw}"),
                format!(
                    "parallel-only {kw} `{name}` has no `#[cfg(not(feature = \"parallel\"))]` \
                     counterpart; callers must provide the sequential fallback (accept via \
                     baseline if that is by design)"
                ),
            );
        }
    }
}

/// First token index after the attribute `a` and any directly following
/// attributes.
fn attachment(toks: &[Tok], attrs: &[Attr], a: &Attr) -> usize {
    let mut j = a.end + 1;
    while let Some(b) = attrs.iter().find(|b| b.start == j) {
        j = b.end + 1;
    }
    j.min(toks.len().saturating_sub(1))
}

/// `(keyword, name)` of the item starting at token `j`, skipping
/// visibility/qualifier tokens. `None` for uses, fields, impls, etc.
fn item_kind_and_name(toks: &[Tok], mut j: usize) -> Option<(&'static str, String)> {
    let mut guard = 0;
    while j + 1 < toks.len() && guard < 8 {
        let t = &toks[j];
        if t.is_ident("fn") {
            return Some(("fn", toks[j + 1].text.clone()));
        }
        if t.is_ident("mod") {
            return Some(("mod", toks[j + 1].text.clone()));
        }
        if t.is_ident("use")
            || t.is_ident("impl")
            || t.is_ident("struct")
            || t.is_ident("enum")
            || t.is_ident("trait")
            || t.is_ident("type")
            || t.is_ident("const")
            || t.is_ident("static")
        {
            return None;
        }
        // Struct field `name: Type` — not an item.
        if t.kind == TokKind::Ident && toks[j + 1].is_punct(':') {
            return None;
        }
        j += 1;
        guard += 1;
    }
    None
}

/// Item name behind a cfg(not(parallel)) attribute (for counterpart
/// matching).
fn item_name(toks: &[Tok], attrs: &[Attr], a: &Attr) -> Option<String> {
    item_kind_and_name(toks, attachment(toks, attrs, a)).map(|(_, n)| n)
}

/// Token index of the last token of the statement starting at `j`:
/// either a `;` at delimiter depth 0, or the `}` closing a block started
/// at depth 0 (with `else` chains followed through). Clamped to `limit`.
fn stmt_end(toks: &[Tok], j: usize, limit: usize) -> usize {
    let mut depth = 0isize;
    let mut k = j;
    while k < limit {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 && t.is_punct('}') {
                // `} else { … }` continues the statement.
                if toks.get(k + 1).is_some_and(|n| n.is_ident("else")) {
                    k += 1;
                    continue;
                }
                return k;
            }
        } else if depth == 0 && t.is_punct(';') {
            return k;
        }
        k += 1;
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run_on(src: &str) -> Vec<String> {
        let model = FileModel::build("p.rs".into(), src);
        let mut sink = Sink::default();
        run(&model, &mut sink);
        sink.findings.iter().map(|f| f.detail.clone()).collect()
    }

    #[test]
    fn early_return_with_sequential_tail_passes() {
        let src = r#"
fn run(n: usize) {
    #[cfg(feature = "parallel")]
    if n > 1 {
        pool_run(n);
        return;
    }
    for _ in 0..n {
        work();
    }
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn early_return_without_fallback_is_flagged() {
        let src = r#"
fn run(n: usize) {
    #[cfg(feature = "parallel")]
    {
        pool_run(n);
        return;
    }
}
"#;
        assert_eq!(run_on(src), vec!["no-sequential-fallback"]);
    }

    #[test]
    fn additive_gated_statement_passes() {
        let src = r#"
fn configure(n: usize) {
    resize(n);
    #[cfg(feature = "parallel")]
    {
        spawn_pool(n);
    }
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn parallel_only_fn_needs_a_counterpart() {
        let flagged = r#"
#[cfg(feature = "parallel")]
fn fan_out() {}
"#;
        assert_eq!(run_on(flagged), vec!["parallel-only-fn"]);
        let paired = r#"
#[cfg(feature = "parallel")]
fn fan_out() {}
#[cfg(not(feature = "parallel"))]
fn fan_out() {}
"#;
        assert!(run_on(paired).is_empty());
    }

    #[test]
    fn gated_use_and_fields_are_skipped() {
        let src = r#"
#[cfg(feature = "parallel")]
use std::sync::atomic::Ordering;

struct R {
    #[cfg(feature = "parallel")]
    pool: Option<u32>,
}
"#;
        assert!(run_on(src).is_empty());
    }
}
