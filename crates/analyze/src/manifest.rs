//! The hot-path manifest: which functions must stay allocation-free.
//!
//! These are the per-sweep / per-kernel functions of the sizing engine —
//! the code the PR 1/4/6 performance work made allocation-free and the
//! bitwise-oracle contract depends on. One missed `clone()` or `collect()`
//! here silently reintroduces a per-sweep heap allocation, which is
//! exactly what the `no-alloc` pass exists to catch.
//!
//! Entries are `(file, functions)`. A listed function that no longer
//! exists in the file produces a `manifest-stale` finding, so renames
//! cannot silently drop coverage. Functions that allocate *by design*
//! (e.g. the paper-definition reference traversals) are still listed when
//! the ISSUE requires their file covered; their accepted findings live in
//! the committed baseline, which documents each acceptance.

/// `(repo-relative file, hot function names)`.
pub const HOT_PATHS: &[(&str, &[&str])] = &[
    (
        "crates/core/src/engine.rs",
        &[
            // Per-sweep electrical table maintenance.
            "refresh_coupling_load",
            "refresh_coupling_load_sparse",
            "rebuild_downstream_caps",
            "rebuild_upstream",
            "full_eval",
            "incremental_eval",
            "ensure_charged_fresh",
            // The Theorem-5 sweeps themselves.
            "lrs_sweep",
            "fused_forward_sweep",
            "fused_backward_sweep",
            "fused_parallel_sweep",
            "verification_sweep",
            "active_sweep",
            // Closed-form resize kernels.
            "closed_form",
            "closed_form_lanes",
            "resize_component",
            "resize_tables",
            "apply_batch",
            "flush_lanes",
            "cap_unchecked",
            // Dense aggregates used inside the OGWS iteration.
            "total_capacitance",
            "total_area",
            "crosstalk_lhs",
        ],
    ),
    (
        "crates/core/src/lrs.rs",
        &[
            // The solve drivers: called once per OGWS iteration; their
            // sweep loops must not allocate (outcome assembly happens in
            // the callers' reporting layer).
            "solve_controlled",
            "solve_constrained",
            "solve_scheduled",
        ],
    ),
    (
        "crates/core/src/ogws.rs",
        &[
            // The per-iteration A4 subgradient multiplier update.
            "update_multipliers",
        ],
    ),
    (
        "crates/core/src/projection.rs",
        &[
            // The per-iteration A5 flow projection.
            "project_flow_conservation_indexed",
            "project_flow_conservation_leveled",
            "flow_conservation_residual",
        ],
    ),
    (
        "crates/circuit/src/engine.rs",
        &[
            // Sequential whole-circuit traversals.
            "downstream_caps_into",
            "upstream_resistance_into",
            "delays_into",
            "propagate_arrivals",
            "downstream_caps_update",
            "upstream_resistance_update",
            "fused_downstream_resize",
            "fused_upstream_resize",
            // Level-chunk kernels (scalar and 4-lane).
            "downstream_caps_chunk",
            "upstream_resistance_chunk",
            "fused_downstream_chunk",
            "fused_upstream_chunk",
            "fused_downstream_chunk_lanes",
            "fused_upstream_chunk_lanes",
            "delays_chunk",
            "delays_chunk_lanes",
            "arrivals_chunk",
            // Streamed per-edge helpers.
            "child_load_edge",
            "child_load_edge_fused",
            "child_load_unchecked",
            "upstream_acc_edges",
            "upstream_acc_edges_shared",
            "size_of_unchecked",
            "resistance_unchecked",
            "capacitance_unchecked",
        ],
    ),
    (
        "crates/circuit/src/traversal.rs",
        &[
            // The paper-definition traversals. These allocate by design
            // (they build the sets the paper reasons about) and are kept
            // off the per-sweep path; their findings are accepted in the
            // committed baseline so any *new* allocation idiom added to
            // this file still surfaces.
            "upstream_full",
            "downstream_full",
            "upstream_stage",
            "downstream_stage",
        ],
    ),
];
