//! Fixture-tree integration tests: each lint pass runs through the real
//! `analyze()` entry point (file walking, manifest wiring, path-scoped
//! pass selection) over two mini-repos under `tests/fixtures/` — a clean
//! tree that must produce zero findings and a seeded-violation tree that
//! must trip every pass — plus the `--deny` baseline semantics on top.

use std::path::{Path, PathBuf};

use ncgws_analyze::findings::{Baseline, Finding};
use ncgws_analyze::{analyze, Analysis};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn run(which: &str) -> Analysis {
    analyze(&fixture_root(which)).expect("fixture tree is readable")
}

fn keys(findings: &[Finding]) -> Vec<String> {
    findings.iter().map(Finding::key).collect()
}

#[test]
fn clean_tree_produces_zero_findings() {
    let analysis = run("clean");
    assert_eq!(analysis.files, 3, "clean fixture tree has three files");
    assert_eq!(
        keys(&analysis.findings),
        Vec::<String>::new(),
        "the clean tree must pass every pass"
    );
    // The documented unsafe sites still appear in the inventory.
    assert_eq!(analysis.unsafe_sites.len(), 2);
    assert!(analysis.unsafe_sites.iter().all(|s| s.documented));
}

#[test]
fn violation_tree_trips_every_pass() {
    let analysis = run("violations");
    let passes_hit: Vec<&str> = {
        let mut p: Vec<&str> = analysis.findings.iter().map(|f| f.pass).collect();
        p.sort();
        p.dedup();
        p
    };
    assert_eq!(
        passes_hit,
        vec!["feature-gate", "no-alloc", "panic-path", "unsafe-audit"],
        "each of the four passes must fire on its seeded violation"
    );
    let details: Vec<&str> = analysis
        .findings
        .iter()
        .map(|f| f.detail.as_str())
        .collect();
    // no-alloc: the seeded `vec![…]` and `.to_vec()` in the manifest file.
    assert!(details.contains(&"vec!"), "details: {details:?}");
    assert!(details.contains(&"to_vec"), "details: {details:?}");
    // panic-path: unwrap, panic! and unjustified indexing in serve code.
    assert!(details.contains(&"unwrap"), "details: {details:?}");
    assert!(details.contains(&"panic!"), "details: {details:?}");
    assert!(details.contains(&"indexing"), "details: {details:?}");
    // unsafe-audit: both the undocumented block and the undocumented fn.
    assert!(details.contains(&"unsafe-block"), "details: {details:?}");
    assert!(details.contains(&"unsafe-fn"), "details: {details:?}");
    // feature-gate: gated early-return without fallback + unpaired fn.
    assert!(
        details.contains(&"no-sequential-fallback"),
        "details: {details:?}"
    );
    assert!(
        details.contains(&"parallel-only-fn"),
        "details: {details:?}"
    );
    // Nothing in the seeded tree is a manifest-stale artifact: the trip
    // wires come from real code idioms, not a mismatched manifest.
    assert!(details.iter().all(|d| !d.starts_with("manifest-stale")));
}

/// The `--deny` contract, driven at the library layer: an empty baseline
/// rejects the seeded tree, a baseline accepting every fingerprint passes
/// it, and fixing the problems turns those entries stale.
#[test]
fn baseline_deny_semantics_over_the_fixture_trees() {
    let violations = run("violations");
    assert!(!violations.findings.is_empty());

    let empty = Baseline::default();
    let new_count = violations
        .findings
        .iter()
        .filter(|f| !empty.contains(f))
        .count();
    assert_eq!(
        new_count,
        violations.findings.len(),
        "an empty baseline denies every seeded finding"
    );

    let accepting = Baseline::parse(&keys(&violations.findings).join("\n"));
    assert!(
        violations.findings.iter().all(|f| accepting.contains(f)),
        "a baseline listing every fingerprint accepts the tree"
    );
    assert!(accepting.stale(&violations.findings).is_empty());

    // The clean tree against the accepting baseline: nothing new, and
    // every accepted entry is now stale (the problems were "fixed").
    let clean = run("clean");
    assert!(clean.findings.iter().all(|f| accepting.contains(f)));
    assert_eq!(accepting.stale(&clean.findings).len(), accepting.keys.len());
}

/// Line-number independence of fingerprints: the committed baseline key of
/// a finding does not change when unrelated lines are inserted above it.
#[test]
fn fingerprints_are_stable_under_line_shifts() {
    use ncgws_analyze::findings::Sink;
    use ncgws_analyze::model::FileModel;

    let src =
        std::fs::read_to_string(fixture_root("violations").join("crates/serve/src/handler.rs"))
            .expect("fixture readable");
    let shifted = format!("// one\n// two\n// three\n{src}");

    let base = {
        let model = FileModel::build("crates/serve/src/handler.rs".into(), &src);
        let mut sink = Sink::default();
        let mut sites = Vec::new();
        ncgws_analyze::analyze_model(&model, &mut sink, &mut sites);
        sink.findings
    };
    let moved = {
        let model = FileModel::build("crates/serve/src/handler.rs".into(), &shifted);
        let mut sink = Sink::default();
        let mut sites = Vec::new();
        ncgws_analyze::analyze_model(&model, &mut sink, &mut sites);
        sink.findings
    };
    assert!(!base.is_empty());
    assert_eq!(keys(&base), keys(&moved), "keys survive the line shift");
    assert_ne!(
        base.iter().map(|f| f.line).collect::<Vec<_>>(),
        moved.iter().map(|f| f.line).collect::<Vec<_>>(),
        "lines did actually move (the keys' stability is not vacuous)"
    );
}
