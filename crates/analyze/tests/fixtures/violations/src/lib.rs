//! Seeded-violation fixture for the `unsafe-audit` and `feature-gate`
//! passes: undocumented unsafe, and parallel-only code with no
//! sequential fallback.

pub fn first_unchecked(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}

pub unsafe fn double_in_place(ptr: *mut f64, len: usize) {
    for i in 0..len {
        *ptr.add(i) *= 2.0;
    }
}

pub fn run(n: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        return n * 2;
    }
}

#[cfg(feature = "parallel")]
fn fan_out(n: usize) -> usize {
    n * 2
}
