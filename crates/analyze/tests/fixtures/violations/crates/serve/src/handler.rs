//! Seeded-violation fixture for the `panic-path` pass: `unwrap`,
//! `panic!` and unjustified indexing in non-test serving code.

pub fn parse_pair(s: &str) -> (f64, f64) {
    let items: Vec<&str> = s.split(',').collect();
    let a = items[0].trim().parse().unwrap();
    let b = items[1].trim().parse().unwrap();
    (a, b)
}

pub fn must_have_newline(buf: &[u8]) -> usize {
    match buf.iter().position(|&b| b == b'\n') {
        Some(newline) => newline,
        None => panic!("buffer has no newline"),
    }
}
