//! Seeded-violation fixture for the `no-alloc` pass: same manifest shape
//! as the clean tree, but `upstream_full` and `downstream_full` allocate.

pub fn upstream_full(seed: u32) -> Vec<u32> {
    let mut cone = vec![seed];
    cone.push(seed.wrapping_add(1));
    cone
}

pub fn downstream_full(cone: &[u32]) -> Vec<u32> {
    let copy = cone.to_vec();
    copy
}

pub fn upstream_stage(acc: &mut u32, x: u32) {
    *acc = acc.wrapping_add(x);
}

pub fn downstream_stage(acc: &mut u32, x: u32) {
    *acc = acc.wrapping_mul(x.max(1));
}
