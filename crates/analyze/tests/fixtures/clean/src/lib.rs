//! Clean fixture for the `unsafe-audit` and `feature-gate` passes:
//! documented unsafe, and every parallel-gated construct with a
//! sequential fallback.

pub fn first_unchecked(xs: &[f64]) -> f64 {
    // SAFETY: callers guarantee `xs` is non-empty, so index 0 is in range.
    unsafe { *xs.get_unchecked(0) }
}

/// Doubles every slot in place.
///
/// # Safety
///
/// `ptr` must point to `len` initialized, exclusively owned `f64` slots.
pub unsafe fn double_in_place(ptr: *mut f64, len: usize) {
    for i in 0..len {
        *ptr.add(i) *= 2.0;
    }
}

pub fn run(n: usize) -> usize {
    #[cfg(feature = "parallel")]
    if n > 1 {
        return n * 2;
    }
    n.max(1)
}

#[cfg(feature = "parallel")]
fn fan_out(n: usize) -> usize {
    n * 2
}

#[cfg(not(feature = "parallel"))]
fn fan_out(n: usize) -> usize {
    n + n
}

pub fn dispatch(n: usize) -> usize {
    fan_out(n)
}
