//! Clean fixture for the `panic-path` pass: serving-layer code that never
//! panics — typed `Option`/`Result` flow, and indexing only with a
//! justifying comment.

pub fn parse_pair(s: &str) -> Option<(f64, f64)> {
    let mut parts = s.split(',');
    let a = parts.next()?.trim().parse().ok()?;
    let b = parts.next()?.trim().parse().ok()?;
    Some((a, b))
}

pub fn first_line(buf: &[u8]) -> &[u8] {
    match buf.iter().position(|&b| b == b'\n') {
        // In range: `position` returned a valid index into `buf`.
        Some(newline) => &buf[..newline],
        None => buf,
    }
}
