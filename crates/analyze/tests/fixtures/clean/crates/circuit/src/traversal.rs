//! Clean fixture for the `no-alloc` pass: every function the hot-path
//! manifest lists for `crates/circuit/src/traversal.rs` exists (no
//! `manifest-stale`) and none of them allocates.

pub fn upstream_full(out: &mut [u32], seed: u32) {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = seed.wrapping_add(i as u32);
    }
}

pub fn downstream_full(out: &mut [u32], seed: u32) {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = seed.wrapping_mul(i as u32 + 1);
    }
}

pub fn upstream_stage(acc: &mut u32, x: u32) {
    *acc = acc.wrapping_add(x);
}

pub fn downstream_stage(acc: &mut u32, x: u32) {
    *acc = acc.wrapping_mul(x.max(1));
}
