//! Durable serving under churn: thousands of queued jobs with random
//! cancels, deadline kills, priority inversions, snapshot resubmits — and a
//! mid-churn server kill followed by crash-restart recovery.
//!
//! The drive submits well over a thousand jobs drawn from ~25 distinct
//! synthetic benchmarks across 7 tenants with mixed priorities, into a
//! **durable** server (disk-backed snapshot store + lifecycle journal).
//! While the queue drains:
//!
//! * a slice of jobs carries tight per-attempt iteration budgets, so they
//!   are repeatedly killed, checkpointed and requeued to resume;
//! * another slice carries short wall-clock attempt timeouts (deadline
//!   kills under real scheduler noise);
//! * ~5% of jobs are cancelled at random, some while queued, some mid-run;
//! * mid-flight checkpoints are stolen with `snapshot_of` and resubmitted
//!   as brand-new jobs on the same server (`submit_resume`).
//!
//! Then the server is **dropped without drain** — the in-process stand-in
//! for a crash — while the backlog is still deep. `Server::recover`
//! replays the journal, restores the finished outcomes, re-queues the
//! backlog (resuming from the durable checkpoints), and the recovered
//! server finishes the drain. At the end every submission must be
//! accounted for with **zero lost jobs**, and a sample of resumed jobs is
//! re-run cold to verify the served result matches an uninterrupted run to
//! 1e-6 — exercising the durability contract end to end.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example server
//! NCGWS_QUICK=1 cargo run --release --example server          # CI smoke
//! cargo run --release --features parallel --example server
//! ```

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
use ncgws::serve::SharedBuffer;
use ncgws::{
    DurableOptions, Flow, JobId, JobInput, JobOutcome, JobSpec, JobState, Server, ServerConfig,
};

const NUM_SPECS: usize = 25;
const NUM_TENANTS: usize = 7;
const MAX_RESUBMITS: usize = 40;

fn circuit(index: usize) -> CircuitSpec {
    let gates = 15 + 7 * (index % 4) + index % 11;
    CircuitSpec::new(format!("churn-{index}"), gates, 2 * gates + 8)
        .with_seed(500 + index as u64)
        .with_num_patterns(8)
}

/// One tracked submission: id, which circuit, its per-attempt budget, and
/// whether it was born from a stolen snapshot (`submit_resume`).
struct Tracked {
    id: JobId,
    spec_index: usize,
    budget: Option<usize>,
    resubmit: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var("NCGWS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let num_jobs: usize = if quick { 1000 } else { 2500 };
    let max_iterations = if quick { 25 } else { 50 };

    // NCGWS_SERVER_DIR pins the server directory (CI uploads it as an
    // artifact when the run fails); default is a per-process temp dir.
    let dir = std::env::var_os("NCGWS_SERVER_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ncgws-server-example-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&dir);
    let server_config = ServerConfig {
        workers: 4,
        max_in_flight_per_tenant: 3,
        checkpoint_every: Some(8),
        max_attempts: 64,
        ..ServerConfig::default()
    };

    let config = ncgws::core::OptimizerConfig::builder()
        .max_iterations(max_iterations)
        .build()?;
    let events = SharedBuffer::new();
    let server = Server::start_durable_with(
        &dir,
        server_config.clone(),
        DurableOptions {
            events: Some(Box::new(events.clone())),
            ..DurableOptions::default()
        },
    )?;

    let mut rng = ChaCha8Rng::seed_from_u64(20260808);
    let mut submitted: Vec<Tracked> = Vec::new();
    let mut cancels_requested = 0usize;
    let mut stolen_resubmits = 0usize;

    println!("submitting {num_jobs} jobs across {NUM_TENANTS} tenants ({NUM_SPECS} distinct circuits)...");
    for i in 0..num_jobs {
        let spec_index = i % NUM_SPECS;
        // Priority inversions on purpose: late submissions frequently carry
        // higher priorities and overtake the backlog.
        let priority = rng.gen_range(0u32..=10) as i32 - 5;
        let mut job = JobSpec::new(JobInput::Synthetic(circuit(spec_index)), config.clone())
            .with_tenant(format!("t{}", i % NUM_TENANTS))
            .with_priority(priority);
        // ~40%: tight per-attempt iteration budgets (deterministic kills).
        let budget = if rng.gen_bool(0.4) {
            let b = rng.gen_range(4usize..12);
            job = job.with_iteration_budget(b);
            Some(b)
        } else {
            None
        };
        // ~10%: short wall-clock attempt slices (deadline kills).
        if rng.gen_bool(0.1) {
            job = job.with_attempt_timeout_ms(rng.gen_range(15u64..40));
        }
        let id = server.submit(job).expect("admission caps are unbounded");
        submitted.push(Tracked {
            id,
            spec_index,
            budget,
            resubmit: false,
        });

        // Cancel a random earlier job now and then (~5% of the fleet).
        if i % 50 == 49 {
            for _ in 0..2 {
                let victim = submitted[rng.gen_range(0usize..submitted.len())].id;
                if server.job_state(victim).is_some_and(|s| !s.is_terminal())
                    && server.cancel(victim)
                {
                    cancels_requested += 1;
                }
            }
        }
    }

    println!(
        "queue loaded: {} jobs ({} cancels requested); churning with snapshot steals...",
        submitted.len(),
        cancels_requested
    );

    // Churn while the queue drains: keep scanning for a still-live job
    // holding a checkpoint (requeued after a kill, or mid-resume) and fork
    // it as a brand-new job via `submit_resume`. The loop ends when the
    // steal cap is hit, every original job has gone terminal, or — since
    // the kill below must land mid-churn — half the fleet is done.
    while stolen_resubmits < MAX_RESUBMITS {
        let done = submitted
            .iter()
            .filter(|t| server.job_state(t.id).is_some_and(JobState::is_terminal))
            .count();
        if done * 2 >= submitted.len() {
            break;
        }
        let mut any_live = false;
        let start = rng.gen_range(0usize..submitted.len());
        let stolen = (0..submitted.len()).find_map(|step| {
            let candidate = &submitted[(start + step) % submitted.len()];
            if candidate.resubmit {
                return None; // don't fork the forks
            }
            let live = server
                .job_state(candidate.id)
                .is_some_and(|s| !s.is_terminal());
            if !live {
                return None;
            }
            any_live = true;
            server
                .snapshot_of(candidate.id)
                .map(|snapshot| (candidate.spec_index, snapshot))
        });
        match stolen {
            Some((spec_index, snapshot)) => {
                let clone = JobSpec::new(JobInput::Synthetic(circuit(spec_index)), config.clone())
                    .with_tenant("resubmit")
                    .with_priority(6);
                let id = server
                    .submit_resume(clone, snapshot)
                    .expect("resubmission is admitted");
                submitted.push(Tracked {
                    id,
                    spec_index,
                    budget: None,
                    resubmit: true,
                });
                stolen_resubmits += 1;
                // Spread the steals across the drain instead of forking the
                // same checkpoint 40 times in one scheduler quantum.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            None if !any_live => break,
            None => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }

    // Kill the server mid-churn: drop without drain. Running attempts are
    // cancelled cooperatively (checkpointing on the way out), the backlog
    // stays on disk, and the worker threads are joined.
    let live_at_kill = submitted
        .iter()
        .filter(|t| server.job_state(t.id).is_some_and(|s| !s.is_terminal()))
        .count();
    println!("killing the server with {live_at_kill} jobs still live (drop without drain)...");
    drop(server);

    // Crash-restart recovery: replay the journal, restore finished
    // outcomes, re-queue the backlog from its durable checkpoints.
    let (server, report) = Server::recover_with(
        &dir,
        DurableOptions {
            events: Some(Box::new(events.clone())),
            ..DurableOptions::default()
        },
    )?;
    println!(
        "recovered: {} jobs seen, {} already terminal, {} requeued ({} resuming from a durable checkpoint)",
        report.jobs_seen,
        report.completed + report.cancelled + report.failed,
        report.requeued,
        report.resumed_from_checkpoint
    );

    // Wait for every job — originals and stolen forks alike — and account
    // for all of them: nothing may be lost across the kill.
    let mut outcomes: Vec<(usize, JobOutcome)> = Vec::new(); // (submitted index, outcome)
    let mut by_state: HashMap<&'static str, usize> = HashMap::new();
    for (index, tracked) in submitted.iter().enumerate() {
        let outcome = server
            .wait(tracked.id)
            .expect("every submitted job resolves");
        let state = server
            .job_state(tracked.id)
            .expect("terminal job stays known");
        let key = match state {
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            _ => unreachable!("wait() returns only for terminal jobs"),
        };
        *by_state.entry(key).or_default() += 1;
        outcomes.push((index, outcome));
    }

    // Resume-vs-cold equivalence on a sample of resumed, completed jobs.
    let mut verified = 0usize;
    let mut redone_saved = 0usize;
    let mut cold_iterations: HashMap<usize, (f64, f64, f64, usize)> = HashMap::new();
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
    for (submitted_index, outcome) in &outcomes {
        if verified >= 12 {
            break;
        }
        let tracked = &submitted[*submitted_index];
        if outcome.resumed_attempts == 0 || outcome.stop_reason.is_interrupted() {
            continue;
        }
        let Some(metrics) = &outcome.final_metrics else {
            continue;
        };
        let (area, delay, noise, iterations) = match cold_iterations.get(&tracked.spec_index) {
            Some(&cached) => cached,
            None => {
                let instance = SyntheticGenerator::new(circuit(tracked.spec_index)).generate()?;
                let cold = Flow::prepare(&instance, config.clone())?.order()?.size()?;
                let m = cold.report.final_metrics;
                let entry = (m.area_um2, m.delay_ps, m.noise_pf, cold.report.iterations);
                cold_iterations.insert(tracked.spec_index, entry);
                entry
            }
        };
        assert!(
            close(metrics.area_um2, area)
                && close(metrics.delay_ps, delay)
                && close(metrics.noise_pf, noise),
            "resumed job on circuit {} diverged from the cold run",
            tracked.spec_index
        );
        if tracked.resubmit {
            // A stolen snapshot skips the prefix its donor already ran.
            assert!(outcome.iterations <= iterations);
        } else {
            assert_eq!(
                outcome.iterations, iterations,
                "resume must redo no completed iterations (exact strategy)"
            );
            // What a restart-from-zero policy would have re-executed for
            // this job: every interrupted attempt's completed prefix.
            if let Some(b) = tracked.budget {
                redone_saved += b * (outcome.resumed_attempts * (outcome.resumed_attempts + 1)) / 2;
            }
        }
        verified += 1;
    }

    let stats = server.drain();
    let completed = by_state.get("completed").copied().unwrap_or(0);
    let cancelled = by_state.get("cancelled").copied().unwrap_or(0);
    let failed = by_state.get("failed").copied().unwrap_or(0);

    println!();
    println!(
        "drained: {} submitted ({} snapshot resubmits) = {} completed + {} cancelled + {} failed",
        submitted.len(),
        stolen_resubmits,
        completed,
        cancelled,
        failed
    );
    println!(
        "server:  {} requeues, {} resumed attempts, {} checkpoints, {} iterations (post-recovery life)",
        stats.requeued, stats.resumed, stats.checkpoints, stats.iterations
    );
    println!(
        "store:   {} bytes resident / {} bytes spilled, {} corrupt-recovered",
        stats.snapshot_bytes_resident,
        stats.snapshot_bytes_spilled,
        stats.snapshots_corrupt_recovered
    );
    println!(
        "resume:  {verified} resumed jobs re-verified against cold runs at 1e-6; \
         restart-from-zero would have re-executed >= {redone_saved} iterations on them"
    );
    println!(
        "events:  {} JSON lines captured across both server lives",
        events.num_lines()
    );

    // Zero lost jobs across the kill: every submission is accounted, none
    // failed, the queue is empty and nothing is still running.
    assert_eq!(completed + cancelled + failed, submitted.len());
    assert_eq!(failed, 0, "no job may exhaust its attempt cap or error");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(report.jobs_seen, submitted.len());
    assert!(live_at_kill > 0, "the kill must land mid-churn");
    assert!(
        report.resumed_from_checkpoint > 0,
        "recovery must resume from durable checkpoints"
    );
    assert!(verified > 0, "churn must produce resumed jobs to verify");
    assert!(stolen_resubmits > 0, "churn must exercise submit_resume");
    println!(
        "\nall durability invariants held: zero lost jobs across the kill, resume matches cold at 1e-6"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
