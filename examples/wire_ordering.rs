//! Stage 1 in isolation: the Switching-Similarity problem of Figure 6.
//!
//! Four wires (named 4, 5, 7 and 8 as in the paper) carry signals with
//! different switching behavior. Wires 5 and 7 switch almost identically,
//! wire 4 is weakly correlated with them, and wire 8 switches mostly opposite
//! to 4. The WOSS heuristic should therefore place 5 and 7 next to each other
//! and keep 8 at the far end — the paper's ordering `<5, 7, 4, 8>` (or its
//! mirror).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example wire_ordering
//! ```

use ncgws::circuit::NodeId;
use ncgws::ordering::{baselines, exact_ordering, woss, SsProblem};
use ncgws::waveform::{ordering_weight, similarity, Waveform};

/// Builds a ±1 waveform from a bit pattern repeated to 200 samples.
fn waveform(pattern: &[u8]) -> Waveform {
    let levels: Vec<bool> = (0..200).map(|t| pattern[t % pattern.len()] == 1).collect();
    Waveform::from_levels(levels)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Waveforms chosen so the pairwise similarities resemble Figure 6:
    // wires 5 and 7 agree ~95% of the time, wire 4 is near-independent of
    // them, wire 8 is mostly the complement of 4.
    let w4 = waveform(&[1, 1, 0, 0, 1, 0, 1, 0, 0, 1]);
    let w5 = waveform(&[1, 0, 1, 0, 1, 0, 1, 0, 1, 0]);
    let w7 = waveform(&[1, 0, 1, 0, 1, 0, 1, 0, 1, 1]);
    let w8 = waveform(&[0, 0, 1, 1, 0, 1, 0, 1, 1, 0]);

    let ids = [
        NodeId::new(4),
        NodeId::new(5),
        NodeId::new(7),
        NodeId::new(8),
    ];
    let waves = [&w4, &w5, &w7, &w8];

    println!("pairwise switching similarity and ordering weight (1 - similarity):");
    let mut weights = vec![0.0; 16];
    for i in 0..4 {
        for j in 0..4 {
            if i == j {
                continue;
            }
            let s = similarity(waves[i], waves[j]);
            weights[i * 4 + j] = ordering_weight(s);
            if i < j {
                println!(
                    "  wires {} - {}: similarity {:+.2}, weight {:.2}",
                    ids[i],
                    ids[j],
                    s,
                    ordering_weight(s)
                );
            }
        }
    }

    let problem = SsProblem::from_weights(ids.to_vec(), weights)?;
    let greedy = woss(&problem);
    let exact = exact_ordering(&problem)?;
    let random = baselines::average_random_cost(&problem, 100, 7);

    let names = |seq: &[NodeId]| {
        seq.iter()
            .map(|id| id.index().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!();
    println!(
        "WOSS ordering : <{}>  effective loading {:.3}",
        names(greedy.sequence()),
        greedy.cost()
    );
    println!(
        "exact ordering: <{}>  effective loading {:.3}",
        names(exact.sequence()),
        exact.cost()
    );
    println!("average random ordering loading: {random:.3}");
    println!();
    println!(
        "WOSS is within {:.1}% of optimal and {:.1}% better than a random track assignment",
        (greedy.cost() - exact.cost()) / exact.cost().max(1e-12) * 100.0,
        (random - greedy.cost()) / random.max(1e-12) * 100.0
    );
    Ok(())
}
