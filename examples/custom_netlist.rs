//! Build a circuit by hand with [`CircuitBuilder`], write it to the text
//! netlist format, parse it back, and optimize it.
//!
//! This is the path a user with a real (externally prepared) netlist would
//! take; everything the optimizer needs — RC attributes, routing channels,
//! coupling geometry, input patterns — travels through the text format.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_netlist
//! ```

use ncgws::core::{baseline, Optimizer, OptimizerConfig};
use ncgws::netlist::format::{parse_instance, write_instance};
use ncgws::netlist::{CircuitSpec, SyntheticGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written netlist: two inputs, a NAND, an inverter, four wires
    // sharing one routing channel.
    let text = "\
# a tiny hand-written design
circuit handmade
driver a 120.0
driver b 150.0
gate   n1 nand
gate   i1 inv
wire   wa 180.0
wire   wb 220.0
wire   wn 260.0
wire   wo 140.0
connect a  wa
connect b  wb
connect wa n1
connect wb n1
connect n1 wn
connect wn i1
connect i1 wo
output  wo 8.0
channel wa wb wn wo
geometry 11.0 0.6 0.03
patterns 64 0.3 99
";
    let instance = parse_instance(text)?;
    println!(
        "parsed `{}`: {} gates, {} wires, critical channel of {} wires",
        instance.name,
        instance.circuit.num_gates(),
        instance.circuit.num_wires(),
        instance.channels[0].len()
    );

    let config = OptimizerConfig::builder().max_iterations(120).build()?;
    let outcome = Optimizer::new(config.clone()).run(&instance)?;
    let r = &outcome.report;
    println!(
        "optimized: noise {:.4} -> {:.4} pF, area {:.0} -> {:.0} um2, delay {:.1} -> {:.1} ps",
        r.initial_metrics.noise_pf,
        r.final_metrics.noise_pf,
        r.initial_metrics.area_um2,
        r.final_metrics.area_um2,
        r.initial_metrics.delay_ps,
        r.final_metrics.delay_ps
    );

    // Compare against the noise-oblivious Lagrangian baseline.
    let base = baseline::lr_delay_area(&instance, &config)?;
    println!(
        "noise-oblivious baseline ends at {:.4} pF of coupling ({} iterations)",
        base.metrics.noise_pf, base.iterations
    );

    // Round-trip a generated instance through the same text format.
    let generated =
        SyntheticGenerator::new(CircuitSpec::new("roundtrip", 30, 70).with_seed(5)).generate()?;
    let serialized = write_instance(&generated, (64, 0.35, 5));
    let reparsed = parse_instance(&serialized)?;
    println!(
        "round-trip check: {} components in, {} components out",
        generated.num_components(),
        reparsed.num_components()
    );
    Ok(())
}
