//! Quickstart: generate a small benchmark, run the staged two-stage flow,
//! and print a Table 1 style summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ncgws::core::{OptimizationReport, OptimizerConfig};
use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
use ncgws::Flow;

fn main() -> Result<(), ncgws::Error> {
    // A small circuit: 120 gates, 260 wires, reproducible from the seed.
    let spec = CircuitSpec::new("quickstart", 120, 260).with_seed(42);
    let instance = SyntheticGenerator::new(spec).generate()?;
    println!(
        "generated `{}`: {} gates, {} wires, {} drivers, {} channels",
        instance.name,
        instance.circuit.num_gates(),
        instance.circuit.num_wires(),
        instance.circuit.num_drivers(),
        instance.channels.len()
    );

    // The default configuration reproduces the paper's setup: minimize area
    // subject to a delay bound (1.0x the unsized delay), a power bound
    // (13% of the unsized power) and a crosstalk bound (11.5% of the unsized
    // coupling), with WOSS wire ordering as stage 1.
    let config = OptimizerConfig::builder().build()?;

    // Stage 1: switching-similarity wire ordering and the coupling model.
    // The ordering is a first-class value — inspect it before sizing.
    let ordered = Flow::prepare(&instance, config)?.order()?;
    println!(
        "stage 1: {} channel orderings, effective loading {:.3}, {} coupling pairs",
        ordered.ordering().orderings.len(),
        ordered.ordering().total_effective_loading,
        ordered.ordering().coupling.len()
    );

    // Stage 2: OGWS Lagrangian sizing over the ordering.
    let sized = ordered.size()?;
    let report = &sized.report;

    println!();
    println!("{}", OptimizationReport::table1_header());
    println!("{}", report.table1_row());
    println!();
    println!(
        "improvements: noise {:.1}%  delay {:.1}%  power {:.1}%  area {:.1}%",
        report.improvements.noise_pct,
        report.improvements.delay_pct,
        report.improvements.power_pct,
        report.improvements.area_pct
    );
    println!(
        "{} OGWS iterations ({}), {:.2} s total, duality gap {:.3}%, feasible: {}",
        report.iterations,
        report.stop_reason,
        report.runtime_seconds,
        report.duality_gap * 100.0,
        report.feasible
    );

    // The component sizes are available for downstream use (e.g. back-annotation).
    println!(
        "widest component after sizing: {:.3} um",
        sized.sizes().max_size()
    );
    Ok(())
}
