//! Sweep the crosstalk bound and watch the area the optimizer needs.
//!
//! This is the kind of design-space exploration the paper's formulation
//! enables: the noise bound `X_B` is a first-class constraint, so tightening
//! it trades area (and power) for noise without touching the delay target.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noise_area_tradeoff
//! ```

use ncgws::core::OptimizerConfig;
use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
use ncgws::Flow;

fn main() -> Result<(), ncgws::Error> {
    let spec = CircuitSpec::new("tradeoff", 80, 180).with_seed(11);
    let instance = SyntheticGenerator::new(spec).generate()?;

    println!(
        "crosstalk bound sweep on `{}` ({} components)",
        instance.name,
        instance.num_components()
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "Xbound(frac)", "noise(pF)", "area(um2)", "power(mW)", "delay(ps)"
    );

    for factor in [0.50, 0.30, 0.20, 0.15, 0.12, 0.10] {
        // The bound factor changes the derived constraint bounds, so each
        // sweep point re-runs stage 1 through a fresh flow (the ordering
        // itself would be identical; `Ordered` reuse applies to repeated
        // sizing under *fixed* bounds, e.g. warm starts).
        let config = OptimizerConfig::builder()
            .crosstalk_bound_factor(factor)
            .max_iterations(120)
            .build()?;
        let outcome = Flow::prepare(&instance, config)?.order()?.size()?;
        let m = &outcome.report.final_metrics;
        println!(
            "{:>12.2} {:>12.4} {:>12.0} {:>12.3} {:>12.1}{}",
            factor,
            m.noise_pf,
            m.area_um2,
            m.power_mw,
            m.delay_ps,
            if outcome.report.feasible {
                ""
            } else {
                "   (infeasible)"
            }
        );
    }

    println!();
    println!("tighter crosstalk bounds force narrower wires near aggressors; the");
    println!("area/power cost stays small until the bound approaches the irreducible");
    println!("fringing coupling of the layout.");
    Ok(())
}
