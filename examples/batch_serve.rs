//! Batch serving: many scenarios through the two-stage flow under one
//! deadline-bearing `RunControl`.
//!
//! Generates eight synthetic benchmarks of growing size, runs them all
//! through a [`BatchRunner`] (across OS threads when built with the
//! `parallel` feature), and prints a throughput summary: instances per
//! second, total OGWS iterations, and each run's stop reason. The shared
//! deadline shows the cooperative-control behavior — runs that outlive it
//! stop cleanly and say so.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example batch_serve
//! cargo run --release --features parallel --example batch_serve
//! ```

use std::time::{Duration, Instant};

use ncgws::core::{BatchRunner, CoreError, OptimizerConfig, RunControl};
use ncgws::netlist::{CircuitSpec, SyntheticGenerator};

fn main() -> Result<(), ncgws::Error> {
    // Eight scenarios of varying size (the kind of mix a sizing service
    // would face), reproducible from their seeds.
    let instances: Vec<_> = (0..8u64)
        .map(|i| {
            let gates = 40 + 25 * i as usize;
            let spec = CircuitSpec::new(format!("serve-{i}"), gates, 2 * gates + 20)
                .with_seed(1000 + i)
                .with_num_patterns(32);
            SyntheticGenerator::new(spec).generate()
        })
        .collect::<Result<_, _>>()?;

    let config = OptimizerConfig::builder().max_iterations(120).build()?;
    let runner = BatchRunner::new(config);

    // One control for the whole batch: a wall-clock deadline that bounds
    // end-to-end latency no matter how many scenarios are queued.
    let deadline = Duration::from_secs(10);
    let control = RunControl::new().with_timeout(deadline);

    println!(
        "serving {} instances under a {:.0} s deadline...\n",
        instances.len(),
        deadline.as_secs_f64()
    );
    let started = Instant::now();
    let results = runner.run(&instances, &control);
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "{:<10} {:>6} {:>5} {:>18} {:>10} {:>10} {:>11}",
        "instance", "comps", "ite", "stop", "noise(%)", "area(%)", "widest(um)"
    );
    let mut total_iterations = 0usize;
    let mut completed = 0usize;
    for (instance, result) in instances.iter().zip(&results) {
        match result {
            Ok(outcome) => {
                let r = &outcome.report;
                total_iterations += r.iterations;
                if !r.stop_reason.is_interrupted() {
                    completed += 1;
                }
                println!(
                    "{:<10} {:>6} {:>5} {:>18} {:>10.1} {:>10.1} {:>11.3}",
                    r.name,
                    r.total_components(),
                    r.iterations,
                    r.stop_reason.to_string(),
                    r.improvements.noise_pct,
                    r.improvements.area_pct,
                    outcome.sizes().max_size()
                );
            }
            // Instances whose turn came after the deadline (or after a
            // cancellation) are skipped before their stage-1 ordering.
            Err(CoreError::Interrupted { reason }) => {
                println!(
                    "{:<10} {:>6} {:>5} {:>18}",
                    instance.name,
                    instance.num_components(),
                    "-",
                    format!("skipped ({reason})")
                );
            }
            Err(e) => println!("{:<10} failed: {e}", instance.name),
        }
    }

    println!();
    println!(
        "throughput: {:.2} instances/s ({} instances in {:.2} s, {} completed, {} interrupted)",
        results.len() as f64 / elapsed.max(1e-9),
        results.len(),
        elapsed,
        completed,
        results.len() - completed
    );
    println!(
        "iterations: {} total, {:.1} per instance",
        total_iterations,
        total_iterations as f64 / results.len().max(1) as f64
    );
    Ok(())
}
