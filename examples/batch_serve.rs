//! Batch serving through the persistent [`Server`]: many scenarios queued
//! as jobs, drained by worker threads, each attempt bounded by a
//! per-attempt wall-clock timeout and resumed from its checkpoint instead
//! of restarting.
//!
//! This example used to drive a [`BatchRunner`](ncgws::BatchRunner) under
//! one shared deadline; the server formulation keeps the same eight
//! growing scenarios but turns the deadline into *per-attempt* timeouts —
//! a run that outlives its slice is checkpointed, requeued and finishes in
//! a later attempt, so the mix completes instead of losing the large
//! instances.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example batch_serve
//! cargo run --release --features parallel --example batch_serve
//! ```

use std::time::Instant;

use ncgws::netlist::CircuitSpec;
use ncgws::{JobInput, JobSpec, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var("NCGWS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (base_gates, step, max_iterations) = if quick { (20, 8, 60) } else { (40, 25, 120) };

    let server = Server::start(ServerConfig {
        workers: 2,
        checkpoint_every: Some(10),
        ..ServerConfig::default()
    });

    let config = ncgws::core::OptimizerConfig::builder()
        .max_iterations(max_iterations)
        .build()?;

    // Eight scenarios of growing size (the kind of mix a sizing service
    // would face), reproducible from their seeds. Larger scenarios get a
    // lower priority, so the small ones clear the queue first.
    let started = Instant::now();
    let jobs: Vec<_> = (0..8u64)
        .map(|i| {
            let gates = base_gates + step * i as usize;
            let spec = CircuitSpec::new(format!("serve-{i}"), gates, 2 * gates + 20)
                .with_seed(1000 + i)
                .with_num_patterns(32);
            let job = JobSpec::new(JobInput::Synthetic(spec), config.clone())
                .with_tenant("batch")
                .with_priority(-(i as i32))
                .with_attempt_timeout_ms(2_000);
            let id = server.submit(job).expect("queue accepts the batch");
            (format!("serve-{i}"), 3 * gates + 20, id)
        })
        .collect();

    println!(
        "serving {} instances on 2 workers (2 s attempt slices)...\n",
        jobs.len()
    );
    println!(
        "{:<10} {:>6} {:>5} {:>8} {:>8} {:>18} {:>10} {:>11}",
        "instance", "comps", "ite", "attempts", "resumed", "stop", "area(um2)", "noise(pF)"
    );

    let mut total_iterations = 0usize;
    for (name, comps, id) in &jobs {
        let outcome = server.wait(*id).expect("job exists");
        total_iterations += outcome.iterations;
        let metrics = outcome.final_metrics.expect("completed jobs carry metrics");
        println!(
            "{:<10} {:>6} {:>5} {:>8} {:>8} {:>18} {:>10.1} {:>11.3}",
            name,
            comps,
            outcome.iterations,
            outcome.attempts,
            outcome.resumed_attempts,
            outcome.stop_reason.to_string(),
            metrics.area_um2,
            metrics.noise_pf
        );
    }

    let stats = server.drain();
    let elapsed = started.elapsed().as_secs_f64();
    println!();
    println!(
        "throughput: {:.2} instances/s ({} instances in {:.2} s, {} completed, {} requeued slices)",
        stats.completed as f64 / elapsed.max(1e-9),
        stats.submitted,
        elapsed,
        stats.completed,
        stats.requeued
    );
    println!(
        "iterations: {} total, {:.1} per instance, {} checkpoints taken",
        total_iterations,
        total_iterations as f64 / jobs.len().max(1) as f64,
        stats.checkpoints
    );
    assert_eq!(stats.completed + stats.failed, stats.submitted);
    Ok(())
}
