//! Per-net (channel-local) crosstalk caps and per-node driven-load caps —
//! two scenarios the paper's fixed three-bound formulation cannot express.
//!
//! The paper bounds only the *total* crosstalk `X_B`, so a quiet channel's
//! headroom can subsidize a noisy one. With the composable constraint
//! system each routing channel gets its own cap (and each driver/gate a cap
//! on the load it directly drives), all still posynomial, so the closed-form
//! LRS and the duality-gap certificate carry over unchanged.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example per_net_caps
//! ```

use ncgws::core::{ConstraintFamily, OptimizerConfig};
use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
use ncgws::Flow;

fn main() -> Result<(), ncgws::Error> {
    let spec = CircuitSpec::new("per-net", 70, 160).with_seed(23);
    let instance = SyntheticGenerator::new(spec).generate()?;

    // Start from a moderate uniform sizing and demand a 12% speed-up: the
    // optimizer must upsize along critical paths, which *raises* coupling.
    // The global crosstalk/power bounds are relaxed so they do not interfere
    // — under the paper's formulation the extra coupling can concentrate in
    // whichever channels the critical paths cross.
    let relaxed = OptimizerConfig::builder()
        .initial_size(1.0)
        .delay_bound_factor(0.88)
        .crosstalk_bound_factor(3.0)
        .power_bound_factor(3.0)
        .max_iterations(300);
    let global = Flow::prepare(&instance, relaxed.clone().build()?)?
        .order()?
        .size()?;

    // The new scenario: same speed-up, but every channel must come in 7%
    // *below* its initial crosstalk and no driver/gate may grow its
    // directly driven load beyond 15% over the initial. The channel-local
    // caps — which the paper's single global bound cannot express — sit
    // just above the irreducible per-channel coupling, so the tightest of
    // them is enforced with essentially zero slack.
    let config = relaxed
        .clone()
        .per_net_crosstalk_cap(0.93)
        .driven_load_cap(1.15)
        .build()?;
    let ordered = Flow::prepare(&instance, config)?.order()?;
    let capped = ordered.size()?;

    println!(
        "`{}`: {} channels, {} extra constraints in {} families\n",
        instance.name,
        instance.channels.len(),
        ordered
            .extra_constraints()
            .families()
            .iter()
            .map(|f| f.len())
            .sum::<usize>(),
        ordered.extra_constraints().num_families(),
    );

    // Per-channel crosstalk under both runs, against the per-net caps.
    let graph = &instance.circuit;
    let coupling = &ordered.ordering().coupling;
    let per_net = &ordered.extra_constraints().families()[0];
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>6}",
        "channel", "global-run(fF)", "capped-run(fF)", "cap(fF)", "met?"
    );
    for constraint in per_net.constraints() {
        let idx: usize = constraint
            .label()
            .strip_prefix("net-")
            .unwrap()
            .parse()
            .unwrap();
        let members = &instance.channels[idx];
        let under_global = coupling.group_crosstalk(graph, global.sizes(), members);
        let under_caps = coupling.group_crosstalk(graph, capped.sizes(), members);
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.3} {:>6}",
            constraint.label(),
            under_global,
            under_caps,
            constraint.bound(),
            if under_caps <= constraint.bound() * (1.0 + 2e-3) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    let gm = &global.report.final_metrics;
    let cm = &capped.report.final_metrics;
    println!(
        "\nglobal-bound run: noise {:.3} pF, delay {:.1} ps, area {:.0} um2 (feasible: {})",
        gm.noise_pf, gm.delay_ps, gm.area_um2, global.report.feasible
    );
    println!(
        "per-net-cap run:  noise {:.3} pF, delay {:.1} ps, area {:.0} um2 (feasible: {})",
        cm.noise_pf, cm.delay_ps, cm.area_um2, capped.report.feasible
    );
    println!("\nper-family slacks of the capped run:");
    for slack in &capped.report.constraint_slacks {
        println!(
            "  {:<20} [{}] {} constraints, worst violation {:+.3e} (rel {:+.2e}) at `{}` — {}",
            slack.family,
            slack.kind,
            slack.constraints,
            slack.worst_violation,
            slack.worst_relative_violation,
            slack.worst_label,
            if slack.satisfied {
                "satisfied"
            } else {
                "VIOLATED"
            }
        );
    }
    // An over-tight cap (below the irreducible per-channel coupling) is not
    // silently ignored: the run reports infeasible and the per-family slack
    // report names the violated channel with its residual.
    let over_tight = relaxed.per_net_crosstalk_cap(0.85).build()?;
    let strict = Flow::prepare(&instance, over_tight)?.order()?.size()?;
    println!(
        "\nover-tight caps (0.85x): feasible={} — reported slacks:",
        strict.report.feasible
    );
    for slack in &strict.report.constraint_slacks {
        println!(
            "  {:<20} worst violation {:+.3e} (rel {:+.2e}) at `{}` — {}",
            slack.family,
            slack.worst_violation,
            slack.worst_relative_violation,
            slack.worst_label,
            if slack.satisfied {
                "satisfied"
            } else {
                "VIOLATED"
            }
        );
    }

    println!(
        "\nthe global-bound run may overshoot individual channels; the capped run\n\
         enforces every channel-local bound while keeping the closed-form LRS,\n\
         and an unachievable cap is reported infeasible with its slack."
    );
    Ok(())
}
