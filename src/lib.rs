//! # ncgws — Noise-Constrained Gate and Wire Sizing
//!
//! A from-scratch Rust reproduction of *"Noise-Constrained Performance
//! Optimization by Simultaneous Gate and Wire Sizing Based on Lagrangian
//! Relaxation"* (Jiang, Jou, Chang — DAC 1999).
//!
//! The crate is a facade over the workspace members:
//!
//! * [`circuit`] — circuit graph, RC models, Elmore delay, timing analysis.
//! * [`coupling`] — physical coupling capacitance and its posynomial model.
//! * [`waveform`] — logic simulation, waveforms, switching similarity.
//! * [`ordering`] — the Switching-Similarity problem and the WOSS heuristic.
//! * [`netlist`] — synthetic ISCAS85-scale benchmark generation and netlist I/O.
//! * [`core`] — the Lagrangian-relaxation sizing engine (LRS + OGWS), the
//!   staged [`flow`] pipeline, run control, and batch execution.
//! * [`serve`] — the persistent optimization server: a priority job queue
//!   with per-tenant admission control, worker threads, checkpoint/resume
//!   and a JSON-lines event stream.
//!
//! # Quickstart: the staged `Flow` pipeline
//!
//! The paper's two stages — WOSS wire ordering, then OGWS Lagrangian
//! sizing — are explicit pipeline states: `prepare` validates the
//! configuration, `order` runs stage 1 and exposes its outcome, `size` runs
//! stage 2. Each intermediate is a first-class value, so the stage-1
//! ordering can be inspected and reused across several sizing runs.
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::OptimizerConfig;
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! // Build a small synthetic benchmark (32 gates, 70 wires).
//! let spec = CircuitSpec::new("tiny", 32, 70).with_seed(7).with_num_patterns(16);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//!
//! // Validate-at-build configuration.
//! let config = OptimizerConfig::builder().max_iterations(40).build()?;
//!
//! // Stage 1: switching-similarity wire ordering + coupling model.
//! let ordered = Flow::prepare(&instance, config)?.order()?;
//! assert!(ordered.ordering().total_effective_loading >= 0.0);
//!
//! // Stage 2: Lagrangian sizing. The ordering stays reusable.
//! let sized = ordered.size()?;
//! assert!(sized.report.final_metrics.noise_pf <= ordered.initial_metrics().noise_pf);
//!
//! // Warm-start a second sizing run from the first solution: it converges
//! // in at most as many iterations.
//! let warm = ordered.size_warm(sized.sizes())?;
//! assert!(warm.report.iterations <= sized.report.iterations);
//! println!("widest component: {:.3} um", warm.sizes().max_size());
//! # Ok(())
//! # }
//! ```
//!
//! # Observing, bounding and cancelling a run
//!
//! A [`RunControl`] threads through the OGWS outer loop (and its inner LRS
//! sweeps): an [`Observer`] receives one event per iteration, a
//! [`CancelFlag`] stops the run cooperatively, and an iteration budget or
//! wall-clock deadline bounds its cost. The reason a run stopped is recorded
//! as a [`StopReason`] in the outcome and report.
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{CollectObserver, OptimizerConfig, RunControl, StopReason};
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let spec = CircuitSpec::new("ctl", 24, 55).with_seed(3).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//! let ordered = Flow::prepare(&instance, OptimizerConfig::default())?.order()?;
//!
//! let observer = CollectObserver::new();
//! let control = RunControl::new()
//!     .with_observer(&observer)
//!     .with_iteration_budget(5);
//! let sized = ordered.size_with(&control)?;
//!
//! assert_eq!(sized.report.iterations, 5);
//! assert_eq!(sized.stop_reason(), StopReason::BudgetExhausted);
//! assert_eq!(observer.count(), 5); // one event per iteration
//! # Ok(())
//! # }
//! ```
//!
//! # Constraint system
//!
//! The paper fixes three global bounds (delay, power, crosstalk); the
//! composable constraint system ([`ncgws_core::constraints`]) lets extra
//! posynomial families ride alongside them without touching the solver:
//! per-net (channel-local) crosstalk caps, per-node driven-load caps, or
//! caller-assembled linear families. The three global bounds are the
//! default (empty) instance and keep their exact legacy arithmetic — the
//! property suite pins that path bitwise to `ncgws_core::reference`.
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::OptimizerConfig;
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let spec = CircuitSpec::new("caps", 24, 55).with_seed(5).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//!
//! // Cap every routing channel at 90% of its initial crosstalk and every
//! // driver/gate's directly driven load at 150% of its initial value.
//! let config = OptimizerConfig::builder()
//!     .per_net_crosstalk_cap(0.9)
//!     .driven_load_cap(1.5)
//!     .max_iterations(40)
//!     .build()?;
//!
//! let ordered = Flow::prepare(&instance, config)?.order()?;
//! // The lowered families are inspectable before sizing...
//! assert_eq!(ordered.extra_constraints().num_families(), 2);
//! let sized = ordered.size()?;
//! // ...and the report carries one slack summary per family.
//! assert_eq!(sized.report.constraint_slacks.len(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! # Solve strategies
//!
//! The OGWS inner loop can run under two solve schedules
//! ([`ncgws_core::schedule`]), selected per run through
//! [`OptimizerConfig::solve_strategy`](core::OptimizerConfig):
//!
//! * [`SolveStrategy::Exact`](core::SolveStrategy) (the default) — the
//!   paper's Figure-8 schedule: every LRS solve restarts from the component
//!   lower bounds and every coordinate sweep re-evaluates and resizes every
//!   component. This path is **bitwise-pinned** to the allocate-per-call
//!   reference (`ncgws_core::reference`) by the property suite; choose it
//!   when reproducing the paper's numbers exactly.
//! * [`SolveStrategy::Adaptive`](core::SolveStrategy) — warm-starts each
//!   solve from the previous OGWS iterate, freezes components whose
//!   per-sweep change stays below
//!   [`freeze_tolerance`](core::AdaptiveSchedule::freeze_tolerance) (every
//!   solve's first sweep and a periodic verification sweep re-check the
//!   whole circuit and unfreeze anything that moved), evaluates the
//!   electrical tables incrementally along the perturbed subgraph only,
//!   and fuses the per-sweep accumulation with the resize into alternating
//!   forward/backward Gauss–Seidel passes. It reaches the *same* unique
//!   subproblem fixed points, validated by invariants instead of bitwise
//!   equality (final metrics within tolerance of the exact path, duality
//!   gap no worse — see `tests/schedule_strategies.rs`), at a 2–4×
//!   end-to-end speedup on 1k–100k-component circuits. Choose it for
//!   throughput: serving, batch sweeps, large circuits.
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{AdaptiveSchedule, OptimizerConfig, SolveStrategy};
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let spec = CircuitSpec::new("sched", 30, 65).with_seed(11).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//!
//! // Opt into the adaptive schedule through the builder; tighten the
//! // freeze tolerance to track the exact path more closely.
//! let config = OptimizerConfig::builder()
//!     .max_iterations(40)
//!     .solve_strategy(SolveStrategy::Adaptive(AdaptiveSchedule {
//!         freeze_tolerance: 1e-4,
//!         ..AdaptiveSchedule::default()
//!     }))
//!     .build()?;
//! let adaptive = Flow::prepare(&instance, config)?.order()?.size()?;
//!
//! let exact_config = OptimizerConfig::builder().max_iterations(40).build()?;
//! let exact = Flow::prepare(&instance, exact_config)?.order()?.size()?;
//!
//! // Same feasibility verdict, fewer inner sweeps per solve...
//! assert_eq!(adaptive.report.feasible, exact.report.feasible);
//! assert!(adaptive.report.mean_sweeps_per_solve <= exact.report.mean_sweeps_per_solve);
//! // ...and final metrics within tolerance of the exact schedule.
//! let rel = (adaptive.report.final_metrics.area_um2 - exact.report.final_metrics.area_um2).abs()
//!     / exact.report.final_metrics.area_um2;
//! assert!(rel < 1e-3);
//! # Ok(())
//! # }
//! ```
//!
//! # Parallelism
//!
//! The stage-2 inner loop can run **level-parallel**
//! ([`ncgws_core::par`]): the engine caches the circuit's topological
//! level partition (nodes of one level share no fanin/fanout edge), chops
//! every level into fixed-width chunks, and distributes the chunks — of
//! the fused Gauss–Seidel sweeps, the exact sweeps, the timing evaluation,
//! the channel-sharded coupling scatter, the subgradient update and the
//! flow projection — across a persistent `std::thread` pool. The work
//! grid is fixed by the data, never by the thread count, and every
//! cross-chunk reduction merges in fixed chunk order, so outcomes are
//! **bitwise identical for `threads` ∈ {1, 2, 8, …}** and the exact solve
//! strategy stays bitwise-pinned to `ncgws_core::reference`
//! (`tests/thread_determinism.rs` proptests both claims).
//!
//! Select it with [`OptimizerConfigBuilder::threads`](core::OptimizerConfigBuilder::threads)
//! (or [`OptimizerConfig::parallel`](core::OptimizerConfig) /
//! [`ParallelPolicy`]); `0` means "use the machine's available
//! parallelism". OS threads only spawn with the `parallel` cargo feature —
//! without it the identical chunk grid runs on the calling thread, so a
//! serial build is a bit-for-bit oracle for a threaded one. Level
//! parallelism pays off on *wide* circuits (many components per level);
//! on chain-like circuits the critical path is the whole circuit and the
//! default [`ParallelPolicy::Sequential`] is the better choice.
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{OptimizerConfig, ParallelPolicy};
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let spec = CircuitSpec::new("par", 30, 65).with_seed(9).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//!
//! let sized_at = |threads: usize| -> Result<_, ncgws::Error> {
//!     let config = OptimizerConfig::builder()
//!         .max_iterations(30)
//!         .threads(threads) // ParallelPolicy::Level { threads }
//!         .build()?;
//!     Ok(Flow::prepare(&instance, config)?.order()?.size()?)
//! };
//!
//! // The determinism guarantee: 1, 2 and 8 workers produce the exact
//! // same sizes, metrics and duality gap, bit for bit.
//! let one = sized_at(1)?;
//! let two = sized_at(2)?;
//! let eight = sized_at(8)?;
//! assert_eq!(one.sizes(), two.sizes());
//! assert_eq!(one.sizes(), eight.sizes());
//! assert_eq!(one.report.final_metrics, eight.report.final_metrics);
//! assert_eq!(ParallelPolicy::threads(2), ParallelPolicy::Level { threads: 2 });
//! # Ok(())
//! # }
//! ```
//!
//! # Vectorized kernels
//!
//! Under any [`ParallelPolicy::Level`](core::ParallelPolicy) run — including
//! `threads(1)` on the calling thread — the engine stores per-node
//! electrical state (sizes, charged/presented capacitance, delays, upstream
//! resistance) as structure-of-arrays `Vec<f64>` slabs aligned to the
//! 256-node chunk grid, streams precomputed per-edge descriptor columns
//! instead of gathering node attributes through every fanout/fanin index,
//! and evaluates the hot kernels — the Theorem-5 closed-form resize, the
//! delay evaluation, the aggregate reductions — in explicit 4-lane
//! `[f64; 4]` blocks with scalar tails (no nightly `std::simd`, no
//! dependencies). `ParallelPolicy::Sequential` keeps the untouched scalar
//! path and serves as the oracle. Two numeric contracts, pinned by
//! `tests/property_simd_kernels.rs`:
//!
//! * kernels that preserve the scalar reduction order (the fused sweeps,
//!   the closed form, the delay lanes) are **bitwise identical** to the
//!   oracle — the exact solve strategy runs only these;
//! * the lane-blocked aggregate reductions (adaptive strategy only)
//!   reassociate partial sums and carry a **1e-6** end-to-end contract.
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{OptimizerConfig, ParallelPolicy, SolveStrategy};
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let spec = CircuitSpec::new("simd", 28, 60).with_seed(13).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//!
//! let sized = |strategy: SolveStrategy, parallel: ParallelPolicy| {
//!     let config = OptimizerConfig::builder()
//!         .max_iterations(30)
//!         .solve_strategy(strategy)
//!         .parallel(parallel)
//!         .build()?;
//!     Flow::prepare(&instance, config)?.order()?.size()
//! };
//!
//! // Exact strategy: the laned grid is bitwise the scalar oracle.
//! let oracle = sized(SolveStrategy::Exact, ParallelPolicy::Sequential)?;
//! let laned = sized(SolveStrategy::Exact, ParallelPolicy::threads(1))?;
//! assert_eq!(oracle.sizes(), laned.sizes());
//! assert_eq!(oracle.report.final_metrics, laned.report.final_metrics);
//!
//! // Adaptive strategy: lane-blocked aggregates, 1e-6 contract.
//! let oracle = sized(SolveStrategy::adaptive(), ParallelPolicy::Sequential)?;
//! let laned = sized(SolveStrategy::adaptive(), ParallelPolicy::threads(1))?;
//! let (a, b) = (oracle.report.final_metrics.area_um2, laned.report.final_metrics.area_um2);
//! assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
//! # Ok(())
//! # }
//! ```
//!
//! # Static analysis & race checking
//!
//! The kernels above rest on conventions no compiler checks; the workspace
//! carries both a static and a dynamic guard for them:
//!
//! * **`ncgws-analyze`** (a dependency-free workspace binary, not part of
//!   this facade) lints the conventions themselves: hot sweep/kernel
//!   functions stay allocation-free, every `unsafe` site documents its
//!   invariant, the serving layer never panics outside injected faults, and
//!   parallel-gated code keeps a sequential fallback. Findings are
//!   fingerprinted line-number-free against the committed
//!   `ANALYZE_BASELINE.txt`; `cargo run -p ncgws-analyze -- --deny` is the
//!   CI gate.
//! * The **`race-check`** cargo feature arms a debug-only shadow claim map
//!   on [`SharedMut`](circuit::SharedMut) kernel writes
//!   (`ncgws_circuit::race`): each parallel pass runs every chunk body in a
//!   `(pass, level, chunk)` context, each write claims its index, and two
//!   chunks of one pass writing the same index panic immediately — the
//!   level-partition invariant behind every `unsafe` kernel write, made
//!   observable. `cargo test --features "parallel race-check"` keeps the
//!   thread-determinism suite bitwise-green with the checker armed; the
//!   production build compiles the instrumentation away.
//!
//! # Batch execution
//!
//! [`BatchRunner`] pushes many instances through the full two-stage flow —
//! through an atomic work queue across OS threads with the `parallel`
//! feature — sharing one control (deadline, cancellation, observer) across
//! all runs:
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{BatchRunner, OptimizerConfig, RunControl};
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let instances: Vec<_> = (0..3)
//!     .map(|seed| {
//!         let spec = CircuitSpec::new(format!("batch-{seed}"), 20, 45)
//!             .with_seed(seed)
//!             .with_num_patterns(8);
//!         SyntheticGenerator::new(spec).generate()
//!     })
//!     .collect::<Result<_, _>>()?;
//!
//! let config = OptimizerConfig::builder().max_iterations(20).build()?;
//! let results = BatchRunner::new(config).run(&instances, &RunControl::new());
//!
//! assert_eq!(results.len(), 3); // one result per instance, in input order
//! for result in &results {
//!     let outcome = result.as_ref().expect("runs succeed");
//!     assert!(outcome.report.final_metrics.area_um2 > 0.0);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Serving & checkpointing
//!
//! Mid-run OGWS state — sizes, the CSR multiplier blocks, the best primal
//! bound, the iteration count and the adaptive-schedule freeze state — can
//! be captured as a serializable [`Snapshot`] through a [`CheckpointSink`]
//! attached to the [`RunControl`] (periodic via
//! [`CheckpointPolicy::every`](core::CheckpointPolicy::every), and on any
//! interrupt). A killed run resumes from its last completed-iteration
//! boundary with [`Ordered::size_resume`](flow::Ordered::size_resume):
//! under the exact solve strategy the resumed trajectory is **bitwise** the
//! uninterrupted one, under the adaptive schedule it matches to 1e-6
//! (`tests/serve_checkpoint.rs` proptests both).
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{CheckpointPolicy, OptimizerConfig, RunControl, SnapshotStore, StopReason};
//! use ncgws::Flow;
//!
//! # fn main() -> Result<(), ncgws::Error> {
//! let spec = CircuitSpec::new("resume", 24, 55).with_seed(9).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//! let ordered = Flow::prepare(&instance, OptimizerConfig::default())?.order()?;
//!
//! // The uninterrupted run is the oracle.
//! let cold = ordered.size()?;
//!
//! // Kill the same run after 4 iterations; the store keeps the snapshot
//! // taken at the interrupt (checkpoints also fire every 2 iterations).
//! let store = SnapshotStore::new();
//! let control = RunControl::new()
//!     .with_iteration_budget(4)
//!     .with_checkpoints(&store, CheckpointPolicy::new().every(2));
//! let killed = ordered.size_with(&control)?;
//! assert_eq!(killed.stop_reason(), StopReason::BudgetExhausted);
//!
//! // The snapshot round-trips through JSON bit for bit...
//! let snapshot = store.latest().expect("interrupt checkpoint");
//! assert_eq!(snapshot.iterations_done, 4);
//! let snapshot = ncgws::Snapshot::from_json(&snapshot.to_json()).unwrap();
//!
//! // ...and the resumed run finishes exactly like the uninterrupted one
//! // (bitwise under the default exact strategy).
//! let resumed = ordered.size_resume(&snapshot, &RunControl::new())?;
//! assert_eq!(resumed.sizes(), cold.sizes());
//! assert_eq!(resumed.report.final_metrics, cold.report.final_metrics);
//! assert_eq!(snapshot.iterations_done + resumed.report.iterations, cold.report.iterations);
//! # Ok(())
//! # }
//! ```
//!
//! The [`serve`] crate builds the job-queue service on this substrate:
//! [`Server`] runs worker threads over a strict-priority queue with
//! per-tenant admission control, requeues interrupted attempts to resume
//! from their latest checkpoint, and reports live [`ServerStats`] plus an
//! optional JSON-lines event stream (see `examples/server.rs` for a
//! churn/fault-injection drive of thousands of jobs).
//!
//! # Durability & fault injection
//!
//! [`Server::start_durable`] makes the queue crash-safe: every checkpoint
//! is persisted through a [`DiskSnapshotStore`] as it is taken (atomic
//! temp-file-plus-rename writes, a versioned header and CRC-32 checksum
//! per file, and a memory-budget spill policy that evicts cold snapshots
//! to disk), and every job lifecycle transition is appended to a
//! [`Journal`]. After a crash — modeled below by dropping the server
//! without draining — [`Server::recover`] replays the journal, restores
//! finished outcomes, and re-queues unfinished jobs to resume from their
//! latest durable snapshot: bitwise under the default exact strategy, to
//! 1e-6 under the adaptive schedule. A corrupted snapshot file is detected
//! by its checksum and falls back to the previous good generation (or a
//! cold start) instead of losing the job.
//!
//! Worker panics are isolated per attempt and retried under the job's
//! [`RetryPolicy`] (deterministic exponential backoff), and a seeded
//! [`FaultPlan`] injects panics, I/O errors, torn writes and dispatch
//! delays reproducibly — see `tests/serve_durability.rs` for the
//! crash-recovery property tests.
//!
//! ```rust
//! use ncgws::core::OptimizerConfig;
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::{Flow, JobInput, JobSpec, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("ncgws-docs-durable-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let config = OptimizerConfig::builder().max_iterations(20).build()?;
//! let circuit = CircuitSpec::new("durable", 20, 45).with_seed(7);
//! let job = JobSpec::new(JobInput::Synthetic(circuit.clone()), config.clone())
//!     .with_iteration_budget(3); // each attempt is killed after 3 iterations
//!
//! // A durable server: checkpoints go to disk, transitions to a journal.
//! let server = Server::start_durable(
//!     &dir,
//!     ServerConfig { workers: 1, ..ServerConfig::default() },
//! )?;
//! let id = server.submit(job)?;
//! while server.stats().checkpoints == 0 {
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//! drop(server); // crash mid-job: no drain — queue and checkpoints survive on disk
//!
//! // Recover and finish: the job resumes from its durable checkpoint.
//! let (server, report) = Server::recover(&dir)?;
//! assert_eq!(report.jobs_seen, 1);
//! let outcome = server.wait(id).expect("job resolves");
//! assert!(!outcome.stop_reason.is_interrupted());
//! server.drain();
//!
//! // The recovered result is bitwise identical to an uninterrupted run.
//! let instance = SyntheticGenerator::new(circuit).generate()?;
//! let cold = Flow::prepare(&instance, config)?.order()?.size()?;
//! assert_eq!(outcome.final_metrics.unwrap(), cold.report.final_metrics);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```
//!
//! # Legacy one-shot API
//!
//! The original `Optimizer::run` entry point remains and is bit-identical to
//! a cold `prepare → order → size` (it is implemented as exactly that):
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{Optimizer, OptimizerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CircuitSpec::new("legacy", 24, 55).with_seed(7).with_num_patterns(8);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//! let outcome = Optimizer::new(OptimizerConfig::default()).run(&instance)?;
//! assert!(outcome.report.final_metrics.noise_pf <= outcome.report.initial_metrics.noise_pf);
//! # Ok(())
//! # }
//! ```

pub use ncgws_circuit as circuit;
pub use ncgws_core as core;
pub use ncgws_coupling as coupling;
pub use ncgws_netlist as netlist;
pub use ncgws_ordering as ordering;
pub use ncgws_serve as serve;
pub use ncgws_waveform as waveform;

mod error;

pub use error::Error;

// The staged pipeline and its run control are the primary public surface;
// re-export them at the facade root alongside the module path
// (`ncgws::flow`).
pub use ncgws_core::flow;
pub use ncgws_core::{
    BatchRunner, CancelFlag, CollectObserver, Flow, IterationEvent, Observer, Ordered, Prepared,
    RunControl, SizedOutcome, StopReason,
};

// Checkpoint/resume: the serializable mid-run state and the sink/policy
// that capture it, plus the job-queue server built on top.
pub use ncgws_core::{CheckpointPolicy, CheckpointSink, Snapshot, SnapshotStore};
pub use ncgws_serve::{
    JobId, JobInput, JobOutcome, JobSpec, JobState, Server, ServerConfig, ServerStats, SubmitError,
};

// Durability and fault injection: the disk-backed snapshot store, the
// lifecycle journal behind `Server::recover`, per-job retry policies, and
// the deterministic fault plan that exercises all of it.
pub use ncgws_serve::{
    DiskSnapshotStore, DurableOptions, FaultPlan, Journal, RecoveryReport, RetryPolicy,
    StoreConfig, StoreError, StoreStats, WriteFault,
};

// The composable constraint system: specs travel in the configuration, the
// lowered families and per-family slacks surface in `Ordered` and the
// report.
pub use ncgws_core::{
    ConstraintFamily, ConstraintSet, ConstraintSpec, FamilyKind, FamilySlack, ScalarConstraint,
    ScalarFamily,
};

// The solve schedule: the exact Figure-8 path (bitwise-pinned) vs the
// adaptive warm-start/active-set/incremental schedule.
pub use ncgws_core::{AdaptiveSchedule, SolveStrategy};

// The level-parallel runtime policy: deterministic multi-threaded inner
// loop (bitwise identical across thread counts).
pub use ncgws_core::ParallelPolicy;

/// Version of the ncgws workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
