//! # ncgws — Noise-Constrained Gate and Wire Sizing
//!
//! A from-scratch Rust reproduction of *"Noise-Constrained Performance
//! Optimization by Simultaneous Gate and Wire Sizing Based on Lagrangian
//! Relaxation"* (Jiang, Jou, Chang — DAC 1999).
//!
//! The crate is a facade over the workspace members:
//!
//! * [`circuit`] — circuit graph, RC models, Elmore delay, timing analysis.
//! * [`coupling`] — physical coupling capacitance and its posynomial model.
//! * [`waveform`] — logic simulation, waveforms, switching similarity.
//! * [`ordering`] — the Switching-Similarity problem and the WOSS heuristic.
//! * [`netlist`] — synthetic ISCAS85-scale benchmark generation and netlist I/O.
//! * [`core`] — the Lagrangian-relaxation sizing engine (LRS + OGWS) and baselines.
//!
//! # Quickstart
//!
//! ```rust
//! use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
//! use ncgws::core::{Optimizer, OptimizerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small synthetic benchmark (48 gates, 96 wires).
//! let spec = CircuitSpec::new("tiny", 48, 96).with_seed(7);
//! let instance = SyntheticGenerator::new(spec).generate()?;
//!
//! // Run the full two-stage flow: WOSS wire ordering, then OGWS sizing.
//! let config = OptimizerConfig::default();
//! let outcome = Optimizer::new(config).run(&instance)?;
//!
//! assert!(outcome.report.final_metrics.noise_pf <= outcome.report.initial_metrics.noise_pf);
//! # Ok(())
//! # }
//! ```

pub use ncgws_circuit as circuit;
pub use ncgws_core as core;
pub use ncgws_coupling as coupling;
pub use ncgws_netlist as netlist;
pub use ncgws_ordering as ordering;
pub use ncgws_waveform as waveform;

/// Version of the ncgws workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
