//! The unified error type of the `ncgws` facade.

use std::fmt;

use ncgws_circuit::CircuitError;
use ncgws_core::CoreError;
use ncgws_coupling::CouplingError;
use ncgws_netlist::NetlistError;
use ncgws_ordering::OrderingError;

/// Any error the workspace can produce, so applications using the facade can
/// propagate with one `?` regardless of which layer failed.
///
/// ```
/// use ncgws::core::OptimizerConfig;
/// use ncgws::netlist::{CircuitSpec, SyntheticGenerator};
/// use ncgws::Flow;
///
/// fn smallest_run() -> Result<f64, ncgws::Error> {
///     // `?` lifts NetlistError and CoreError into ncgws::Error alike.
///     let spec = CircuitSpec::new("tiny", 16, 36).with_seed(1).with_num_patterns(8);
///     let instance = SyntheticGenerator::new(spec).generate()?;
///     let config = OptimizerConfig::builder().max_iterations(10).build()?;
///     let sized = Flow::prepare(&instance, config)?.order()?.size()?;
///     Ok(sized.report.final_metrics.area_um2)
/// }
///
/// assert!(smallest_run().unwrap() > 0.0);
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Circuit construction or analysis failed (`ncgws-circuit`).
    Circuit(CircuitError),
    /// The coupling model could not be built (`ncgws-coupling`).
    Coupling(CouplingError),
    /// The wire-ordering stage failed (`ncgws-ordering`).
    Ordering(OrderingError),
    /// Netlist generation, parsing or writing failed (`ncgws-netlist`).
    Netlist(NetlistError),
    /// The sizing engine failed (`ncgws-core`): invalid configuration,
    /// infeasible bounds, or a propagated lower-layer failure.
    Core(CoreError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Circuit(e) => write!(f, "circuit: {e}"),
            Error::Coupling(e) => write!(f, "coupling: {e}"),
            Error::Ordering(e) => write!(f, "ordering: {e}"),
            Error::Netlist(e) => write!(f, "netlist: {e}"),
            Error::Core(e) => write!(f, "core: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Circuit(e) => Some(e),
            Error::Coupling(e) => Some(e),
            Error::Ordering(e) => Some(e),
            Error::Netlist(e) => Some(e),
            Error::Core(e) => Some(e),
        }
    }
}

impl From<CircuitError> for Error {
    fn from(e: CircuitError) -> Self {
        Error::Circuit(e)
    }
}

impl From<CouplingError> for Error {
    fn from(e: CouplingError) -> Self {
        Error::Coupling(e)
    }
}

impl From<OrderingError> for Error {
    fn from(e: OrderingError) -> Self {
        Error::Ordering(e)
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Self {
        Error::Netlist(e)
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source_for_every_layer() {
        let e = Error::from(CircuitError::NoDrivers);
        assert!(e.to_string().starts_with("circuit:"));
        assert!(e.source().is_some());

        let e = Error::from(CoreError::InfeasibleBounds {
            reason: "crosstalk bound too small".into(),
        });
        assert!(e.to_string().starts_with("core:"));
        assert!(e.source().is_some());
    }
}
