//! Property tests pinning the allocation-free evaluation engine to the
//! allocate-per-call reference path: on random synthetic instances the two
//! must produce **bitwise identical** results, and a reused engine must be
//! perfectly reproducible across repeated solves.

use ncgws::core::CircuitMetrics;
use ncgws::core::{
    build_coupling, reference, ConstraintBounds, LrsSolver, Multipliers, OgwsSolver,
    OptimizerConfig, OrderingStrategy, SizingEngine, SizingProblem,
};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("eval-{seed}"), gates, gates * 2 + 5)
            .with_seed(seed)
            .with_num_patterns(8),
    )
    .generate()
    .expect("generation succeeds")
}

fn loose_bounds() -> ConstraintBounds {
    ConstraintBounds {
        delay: 1e15,
        total_capacitance: 1e15,
        crosstalk: 1e15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The workspace-reuse LRS solver and the seed's allocate-per-call loop
    /// agree bit for bit — sizes, sweep count and convergence flag.
    #[test]
    fn engine_lrs_is_bitwise_identical_to_reference(
        seed in 0u64..400,
        gates in 12usize..40,
        edge_scale in 1e-5f64..1e2,
        beta in 0.0f64..10.0,
        gamma in 0.0f64..10.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let mut multipliers = Multipliers::uniform(&inst.circuit, edge_scale, 0.0);
        multipliers.beta = beta;
        multipliers.gamma = gamma;

        let naive = reference::lrs_solve(&problem, &multipliers, 40, 1e-7);

        let mut engine = SizingEngine::for_problem(&problem);
        let mut sizes = inst.circuit.minimum_sizes();
        let stats = LrsSolver::new(40, 1e-7).solve_with(&mut engine, &multipliers, &mut sizes);

        prop_assert_eq!(&naive.sizes, &sizes, "sizes must match bitwise");
        prop_assert_eq!(naive.sweeps, stats.sweeps);
        prop_assert_eq!(naive.converged, stats.converged);
    }

    /// Metrics through the engine equal the reference evaluation bitwise,
    /// even after the workspace has been dirtied by unrelated evaluations.
    #[test]
    fn engine_metrics_are_bitwise_identical_to_reference(
        seed in 0u64..400,
        gates in 12usize..35,
        size_a in 0.2f64..8.0,
        size_b in 0.2f64..8.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let graph = &inst.circuit;
        let mut engine = SizingEngine::new(graph, &ordering.coupling);

        // Dirty the workspace with an unrelated sizing first.
        let _ = CircuitMetrics::evaluate_with(&mut engine, &graph.uniform_sizes(size_b));

        let sizes = graph.uniform_sizes(size_a);
        let naive = CircuitMetrics::evaluate(graph, &ordering.coupling, &sizes);
        let engine_metrics = CircuitMetrics::evaluate_with(&mut engine, &sizes);
        prop_assert_eq!(naive, engine_metrics);
    }

    /// Repeated solves on one engine are exactly reproducible: no state
    /// leaks between runs through the reused buffers.
    #[test]
    fn repeated_runs_on_one_engine_are_reproducible(
        seed in 0u64..300,
        gates in 12usize..30,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let config = OptimizerConfig { max_iterations: 15, ..OptimizerConfig::default() };
        let solver = OgwsSolver::new(config);

        let mut engine = SizingEngine::for_problem(&problem);
        let first = solver.solve_with(&problem, &mut engine);
        let second = solver.solve_with(&problem, &mut engine);
        prop_assert_eq!(&first.sizes, &second.sizes);
        prop_assert_eq!(first.feasible, second.feasible);
        prop_assert_eq!(first.best_gap, second.best_gap);

        // And a fresh engine gives the same answer as the reused one.
        let fresh = solver.solve(&problem);
        prop_assert_eq!(&fresh.sizes, &second.sizes);
    }
}
