//! Property-based tests of the circuit/timing substrate: Elmore analysis,
//! area and power on randomly generated circuits and sizings.

use ncgws::circuit::{total_area, total_capacitance, ElmoreAnalyzer, SizeVector, TimingAnalysis};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

fn instance_with(gates: usize, wires: usize, seed: u64) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("prop-{gates}-{seed}"), gates, wires)
            .with_seed(seed)
            .with_num_patterns(8),
    )
    .generate()
    .expect("generation succeeds")
}

/// A strategy producing a small instance plus a random in-bounds size vector.
fn instance_and_sizes() -> impl Strategy<Value = (ProblemInstance, SizeVector)> {
    (10usize..40, 2usize..5, 0u64..1000).prop_flat_map(|(gates, ratio, seed)| {
        let wires = gates * ratio + 3;
        let inst = instance_with(gates, wires, seed);
        let n = inst.circuit.num_components();
        (Just(inst), proptest::collection::vec(0.1f64..10.0, n))
            .prop_map(|(inst, raw)| (inst, SizeVector::new(raw)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn delays_and_arrivals_are_finite_and_nonnegative((inst, sizes) in instance_and_sizes()) {
        let graph = &inst.circuit;
        prop_assert!(graph.check_sizes(&sizes).is_ok());
        let timing = TimingAnalysis::run(graph, &sizes, None);
        for id in graph.node_ids() {
            let d = timing.delays[id.index()];
            prop_assert!(d.is_finite() && d >= 0.0, "delay of {id} is {d}");
            let a = timing.arrival.of(id);
            prop_assert!(a.is_finite() && a >= 0.0, "arrival of {id} is {a}");
        }
        prop_assert!(timing.critical_path_delay > 0.0);
        // The critical path delay is attained by some primary output.
        let max_po = graph
            .primary_output_drivers()
            .iter()
            .map(|&po| timing.arrival.of(po))
            .fold(0.0_f64, f64::max);
        prop_assert!((max_po - timing.critical_path_delay).abs() < 1e-9);
    }

    #[test]
    fn arrival_constraints_of_problem_pp_hold((inst, sizes) in instance_and_sizes()) {
        let graph = &inst.circuit;
        let timing = TimingAnalysis::run(graph, &sizes, None);
        for i in graph.component_ids() {
            for &j in graph.fanin(i) {
                if j == graph.source() {
                    continue;
                }
                prop_assert!(
                    timing.arrival.of(j) + timing.delays[i.index()]
                        <= timing.arrival.of(i) + 1e-9
                );
            }
        }
    }

    #[test]
    fn area_and_capacitance_are_monotone_in_size((inst, sizes) in instance_and_sizes()) {
        let graph = &inst.circuit;
        let mut larger = sizes.clone();
        for x in larger.iter_mut() {
            *x = (*x * 1.5).min(10.0);
        }
        prop_assert!(total_area(graph, &larger) >= total_area(graph, &sizes) - 1e-9);
        prop_assert!(total_capacitance(graph, &larger) >= total_capacitance(graph, &sizes) - 1e-9);
    }

    #[test]
    fn area_is_exactly_linear_in_uniform_scaling((inst, _sizes) in instance_and_sizes()) {
        let graph = &inst.circuit;
        let one = graph.uniform_sizes(1.0);
        let three = graph.uniform_sizes(3.0);
        let a1 = total_area(graph, &one);
        let a3 = total_area(graph, &three);
        prop_assert!((a3 - 3.0 * a1).abs() / a1 < 1e-9);
    }

    #[test]
    fn downstream_caps_shrink_behind_gates((inst, sizes) in instance_and_sizes()) {
        // The capacitance charged by a driver equals the presented loads of
        // its stage children; gates never leak downstream-stage capacitance
        // into an upstream stage.
        let graph = &inst.circuit;
        let analyzer = ElmoreAnalyzer::new(graph);
        let caps = analyzer.downstream_caps(&sizes, None);
        for id in graph.node_ids() {
            prop_assert!(caps.charged_of(id) >= 0.0);
            prop_assert!(caps.presented_of(id) >= 0.0);
        }
        for gate in graph.gate_ids() {
            // A gate presents exactly its input capacitance.
            let expected = graph.capacitance(gate, &sizes);
            prop_assert!((caps.presented_of(gate) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn upstream_resistance_is_nonnegative_and_zero_for_drivers((inst, sizes) in instance_and_sizes()) {
        let graph = &inst.circuit;
        let analyzer = ElmoreAnalyzer::new(graph);
        let upstream = analyzer.upstream_resistance(&sizes);
        for id in graph.node_ids() {
            prop_assert!(upstream[id.index()] >= 0.0);
        }
        for d in graph.driver_ids() {
            prop_assert_eq!(upstream[d.index()], 0.0);
        }
    }
}
