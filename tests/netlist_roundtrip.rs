//! Integration tests of the netlist text format against the rest of the flow:
//! a generated instance serialized to text, parsed back, and optimized must
//! describe the same optimization problem.

use ncgws::core::{Optimizer, OptimizerConfig};
use ncgws::netlist::format::{parse_instance, write_instance};
use ncgws::netlist::{CircuitSpec, CircuitStats, SyntheticGenerator};

#[test]
fn roundtripped_instance_optimizes_to_the_same_metrics() {
    let spec = CircuitSpec::new("rt-flow", 40, 90)
        .with_seed(31)
        .with_num_patterns(32);
    let directive = (
        spec.num_patterns,
        spec.pattern_toggle_probability,
        spec.seed ^ 0x5175_AB1E,
    );
    let original = SyntheticGenerator::new(spec).generate().expect("generate");
    let text = write_instance(&original, directive);
    let parsed = parse_instance(&text).expect("parse");

    let config = OptimizerConfig {
        max_iterations: 40,
        ..OptimizerConfig::default()
    };
    let a = Optimizer::new(config.clone())
        .run(&original)
        .expect("run original");
    let b = Optimizer::new(config).run(&parsed).expect("run parsed");

    // The graphs have identical structure and attributes, so the initial
    // metrics must match exactly and the final metrics must match closely
    // (node renumbering can reorder ties in the channel similarity matrices).
    assert_eq!(
        a.report.initial_metrics.area_um2,
        b.report.initial_metrics.area_um2
    );
    let rel = |x: f64, y: f64| (x - y).abs() / x.abs().max(1e-12);
    assert!(
        rel(
            a.report.initial_metrics.noise_pf,
            b.report.initial_metrics.noise_pf
        ) < 1e-9
    );
    assert!(
        rel(
            a.report.final_metrics.area_um2,
            b.report.final_metrics.area_um2
        ) < 0.05
    );
}

#[test]
fn structural_statistics_survive_the_roundtrip() {
    let spec = CircuitSpec::new("rt-stats", 60, 130).with_seed(5);
    let directive = (16, 0.3, 1);
    let original = SyntheticGenerator::new(spec).generate().expect("generate");
    let parsed = parse_instance(&write_instance(&original, directive)).expect("parse");
    let a = CircuitStats::of(&original.circuit);
    let b = CircuitStats::of(&parsed.circuit);
    assert_eq!(a.num_gates, b.num_gates);
    assert_eq!(a.num_wires, b.num_wires);
    assert_eq!(a.num_drivers, b.num_drivers);
    assert_eq!(a.num_outputs, b.num_outputs);
    assert_eq!(a.num_edges, b.num_edges);
    assert_eq!(a.depth, b.depth);
}

#[test]
fn parse_errors_do_not_panic_on_garbage() {
    for garbage in [
        "",
        "circuit\n",
        "driver\n",
        "wire w -5\n",
        "gate g unknown\n",
        "connect a b\n",
        "channel\n",
        "geometry 1 2\n",
        "patterns x y z\n",
        "completely unrelated text\n",
    ] {
        // Either a structured parse error or a structured circuit error; never a panic.
        let _ = parse_instance(garbage);
    }
}
