//! Integration tests of the staged `Flow` API: bitwise equivalence with the
//! legacy one-shot `Optimizer::run`, warm starts, and run control
//! (observers, cancellation, iteration budgets, deadlines, batch).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ncgws::core::{
    BatchRunner, CancelFlag, CollectObserver, IterationEvent, Observer, Optimizer, OptimizerConfig,
    RunControl, StopReason,
};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use ncgws::Flow;
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("flow-{seed}"), gates, gates * 2 + 10)
            .with_seed(seed)
            .with_num_patterns(16),
    )
    .generate()
    .expect("generation succeeds")
}

fn quick_config() -> OptimizerConfig {
    OptimizerConfig::builder()
        .max_iterations(40)
        .max_lrs_sweeps(20)
        .build()
        .expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The staged pipeline (cold) and the legacy one-shot wrapper must be
    /// the same computation, bit for bit, on random instances.
    #[test]
    fn flow_is_bitwise_identical_to_legacy_run(seed in 0u64..400, gates in 15usize..50) {
        let inst = instance(seed, gates);
        let legacy = Optimizer::new(quick_config()).run(&inst).expect("legacy run");

        let ordered = Flow::prepare(&inst, quick_config())
            .expect("prepare")
            .order()
            .expect("order");
        let sized = ordered.size().expect("size");

        // Sizes and every numeric report field must match exactly (the
        // wall-clock fields are measurements and are excluded).
        prop_assert_eq!(sized.sizes(), legacy.sizes());
        prop_assert_eq!(&sized.report.initial_metrics, &legacy.report.initial_metrics);
        prop_assert_eq!(&sized.report.final_metrics, &legacy.report.final_metrics);
        prop_assert_eq!(&sized.report.improvements, &legacy.report.improvements);
        prop_assert_eq!(sized.report.iterations, legacy.report.iterations);
        prop_assert_eq!(sized.report.feasible, legacy.report.feasible);
        prop_assert_eq!(sized.report.converged, legacy.report.converged);
        prop_assert_eq!(sized.report.stop_reason, legacy.report.stop_reason);
        prop_assert_eq!(sized.report.duality_gap, legacy.report.duality_gap);
        prop_assert_eq!(&sized.report.constraint_slacks, &legacy.report.constraint_slacks);
        prop_assert!(sized.report.constraint_slacks.is_empty(), "no extra families configured");
        prop_assert_eq!(&sized.report.memory, &legacy.report.memory);
        prop_assert_eq!(
            sized.report.ordering_effective_loading,
            legacy.report.ordering_effective_loading
        );
        prop_assert_eq!(
            sized.report.iteration_records.len(),
            legacy.report.iteration_records.len()
        );
        for (a, b) in sized
            .report
            .iteration_records
            .iter()
            .zip(&legacy.report.iteration_records)
        {
            prop_assert_eq!(a.primal_area, b.primal_area);
            prop_assert_eq!(a.dual_value, b.dual_value);
            prop_assert_eq!(a.gap, b.gap);
            prop_assert_eq!(a.lrs_sweeps, b.lrs_sweeps);
        }
    }

    /// Warm-starting from a cold run's solution converges in at most the
    /// cold iteration count: the feasible seed is an immediate primal upper
    /// bound while the dual trajectory is unchanged, so the gap at every
    /// iteration is no larger than the cold run's.
    #[test]
    fn warm_start_converges_no_slower_than_cold(seed in 0u64..300, gates in 15usize..40) {
        let inst = instance(seed, gates);
        let ordered = Flow::prepare(&inst, quick_config())
            .expect("prepare")
            .order()
            .expect("order");
        let cold = ordered.size().expect("cold run");
        let warm = ordered.size_warm(cold.sizes()).expect("warm run");
        prop_assert!(
            warm.report.iterations <= cold.report.iterations,
            "warm {} vs cold {}",
            warm.report.iterations,
            cold.report.iterations
        );
        if cold.report.feasible {
            prop_assert!(warm.report.feasible);
            // The warm run can only keep or improve the cold area.
            prop_assert!(
                warm.report.final_metrics.area_um2
                    <= cold.report.final_metrics.area_um2 * (1.0 + 1e-9)
            );
        }
    }
}

/// An observer that cancels the shared flag once it has seen `after` events.
struct CancelAfter {
    flag: CancelFlag,
    after: usize,
    seen: AtomicUsize,
}

impl Observer for CancelAfter {
    fn on_iteration(&self, _event: &IterationEvent<'_>) {
        if self.seen.fetch_add(1, Ordering::SeqCst) + 1 >= self.after {
            self.flag.cancel();
        }
    }
}

#[test]
fn cancellation_after_k_iterations_yields_exactly_k_events() {
    let inst = instance(77, 40);
    let ordered = Flow::prepare(&inst, quick_config())
        .unwrap()
        .order()
        .unwrap();
    // The uncontrolled run must need more than k iterations for the
    // cancellation to be what stops the run.
    let k = 3;
    let cold = ordered.size().unwrap();
    assert!(cold.report.iterations > k, "instance converges too fast");

    let flag = CancelFlag::new();
    let observer = CancelAfter {
        flag: flag.clone(),
        after: k,
        seen: AtomicUsize::new(0),
    };
    let control = RunControl::new()
        .with_observer(&observer)
        .with_cancel_flag(flag);
    let sized = ordered.size_with(&control).unwrap();

    assert_eq!(sized.stop_reason(), StopReason::Cancelled);
    assert_eq!(sized.report.stop_reason, StopReason::Cancelled);
    assert_eq!(
        observer.seen.load(Ordering::SeqCst),
        k,
        "exactly k observer events"
    );
    assert_eq!(sized.report.iterations, k);
    assert_eq!(sized.ogws.num_iterations(), k);
}

#[test]
fn iteration_budget_stops_within_one_iteration() {
    let inst = instance(5, 35);
    let ordered = Flow::prepare(&inst, quick_config())
        .unwrap()
        .order()
        .unwrap();
    let cold = ordered.size().unwrap();
    let budget = 4;
    assert!(
        cold.report.iterations > budget,
        "instance converges too fast"
    );

    let collector = CollectObserver::new();
    let control = RunControl::new()
        .with_observer(&collector)
        .with_iteration_budget(budget);
    let sized = ordered.size_with(&control).unwrap();
    assert_eq!(sized.report.iterations, budget);
    assert_eq!(sized.stop_reason(), StopReason::BudgetExhausted);
    assert_eq!(collector.count(), budget);
    // The budgeted prefix is the same trajectory as the cold run's.
    let budgeted: Vec<f64> = sized
        .report
        .iteration_records
        .iter()
        .map(|r| r.gap)
        .collect();
    let cold_prefix: Vec<f64> = cold.report.iteration_records[..budget]
        .iter()
        .map(|r| r.gap)
        .collect();
    assert_eq!(budgeted, cold_prefix);
}

#[test]
fn expired_deadline_stops_before_the_first_iteration() {
    let inst = instance(9, 30);
    let ordered = Flow::prepare(&inst, quick_config())
        .unwrap()
        .order()
        .unwrap();
    let control = RunControl::new().with_deadline(Instant::now() - Duration::from_millis(1));
    let sized = ordered.size_with(&control).unwrap();
    assert_eq!(sized.report.iterations, 0);
    assert_eq!(sized.stop_reason(), StopReason::DeadlineExpired);
    assert!(!sized.report.feasible);
    // The report is still fully formed and serializable.
    let json = serde_json::to_string(&sized.report).expect("report serializes");
    assert!(json.contains("DeadlineExpired"));
}

#[test]
fn batch_runner_matches_solo_runs_and_shares_control() {
    let instances: Vec<ProblemInstance> = (0..4)
        .map(|i| instance(200 + i, 20 + 4 * i as usize))
        .collect();
    let runner = BatchRunner::new(quick_config());
    let results = runner.run(&instances, &RunControl::new());
    assert_eq!(results.len(), instances.len());
    for (inst, result) in instances.iter().zip(&results) {
        let batch = result.as_ref().expect("batch run succeeds");
        let solo = Optimizer::new(quick_config()).run(inst).expect("solo run");
        assert_eq!(batch.sizes(), solo.sizes(), "{}", inst.name);
        assert_eq!(batch.report.final_metrics, solo.report.final_metrics);
    }

    // A pre-cancelled shared control skips every instance before its
    // stage-1 ordering: the slots hold `Interrupted` errors, not outcomes.
    let flag = CancelFlag::new();
    flag.cancel();
    let cancelled = runner.run(&instances, &RunControl::new().with_cancel_flag(flag));
    assert_eq!(cancelled.len(), instances.len());
    for result in &cancelled {
        assert!(matches!(
            result,
            Err(ncgws::core::CoreError::Interrupted {
                reason: StopReason::Cancelled
            })
        ));
    }
}

#[test]
fn stop_reason_serializes_into_report_json() {
    let inst = instance(42, 25);
    let outcome = Optimizer::new(quick_config()).run(&inst).unwrap();
    let json = serde_json::to_string(&outcome.report).unwrap();
    assert!(json.contains("stop_reason"));
    // A quick run either converges, stagnates, or exhausts its iterations.
    assert!(
        json.contains("Converged") || json.contains("Stagnated") || json.contains("IterationLimit"),
        "{json}"
    );
}
