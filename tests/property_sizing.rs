//! Property-based tests of the Lagrangian sizing engine on randomly
//! generated circuits: bound respect, determinism, and monotone response to
//! the multipliers.

use ncgws::core::{
    build_coupling, ConstraintBounds, LrsSolver, Multipliers, OrderingStrategy, SizingProblem,
};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("sz-{seed}"), gates, gates * 2 + 5)
            .with_seed(seed)
            .with_num_patterns(8),
    )
    .generate()
    .expect("generation succeeds")
}

fn loose_bounds() -> ConstraintBounds {
    ConstraintBounds {
        delay: 1e15,
        total_capacitance: 1e15,
        crosstalk: 1e15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn lrs_solutions_respect_bounds_for_any_multiplier_scale(
        seed in 0u64..500,
        gates in 12usize..40,
        edge_scale in 1e-6f64..1e3,
        beta in 0.0f64..10.0,
        gamma in 0.0f64..10.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let mut multipliers = Multipliers::uniform(&inst.circuit, edge_scale, 0.0);
        multipliers.beta = beta;
        multipliers.gamma = gamma;
        let outcome = LrsSolver::new(40, 1e-7).solve(&problem, &multipliers);
        prop_assert!(inst.circuit.check_sizes(&outcome.sizes).is_ok());
        prop_assert!(outcome.sweeps >= 1);
    }

    #[test]
    fn lrs_is_deterministic(seed in 0u64..300, gates in 12usize..30) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let multipliers = Multipliers::uniform(&inst.circuit, 0.01, 0.5);
        let solver = LrsSolver::new(40, 1e-7);
        let a = solver.solve(&problem, &multipliers);
        let b = solver.solve(&problem, &multipliers);
        prop_assert_eq!(a.sizes, b.sizes);
    }

    #[test]
    fn uniformly_larger_delay_weights_never_shrink_total_size(
        seed in 0u64..300,
        gates in 12usize..30,
        low in 1e-5f64..1e-2,
        factor in 2.0f64..50.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let solver = LrsSolver::new(60, 1e-8);
        let small = solver.solve(&problem, &Multipliers::uniform(&inst.circuit, low, 0.0));
        let large =
            solver.solve(&problem, &Multipliers::uniform(&inst.circuit, low * factor, 0.0));
        prop_assert!(large.sizes.sum() >= small.sizes.sum() - 1e-9);
    }

    #[test]
    fn larger_power_multiplier_never_grows_total_size(
        seed in 0u64..300,
        gates in 12usize..30,
        beta in 1.0f64..100.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let solver = LrsSolver::new(60, 1e-8);
        let mut m = Multipliers::uniform(&inst.circuit, 0.05, 0.0);
        let relaxed = solver.solve(&problem, &m);
        m.beta = beta;
        let constrained = solver.solve(&problem, &m);
        prop_assert!(constrained.sizes.sum() <= relaxed.sizes.sum() + 1e-9);
    }
}
