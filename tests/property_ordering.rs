//! Property-based tests of the switching-similarity substrate and the wire
//! ordering algorithms.

use ncgws::circuit::NodeId;
use ncgws::coupling::{exact_factor, truncated_factor, truncation_error_ratio};
use ncgws::ordering::{baselines, exact_ordering, woss, SsProblem};
use ncgws::waveform::{miller_factor, similarity, Waveform};
use proptest::prelude::*;

/// A strategy for a symmetric non-negative weight matrix over `n` wires.
fn weight_matrix(max_n: usize) -> impl Strategy<Value = (usize, Vec<f64>)> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..2.0, n * (n - 1) / 2).prop_map(move |upper| {
            let mut m = vec![0.0; n * n];
            let mut it = upper.into_iter();
            for i in 0..n {
                for j in (i + 1)..n {
                    let w = it.next().expect("enough entries");
                    m[i * n + j] = w;
                    m[j * n + i] = w;
                }
            }
            (n, m)
        })
    })
}

fn problem(n: usize, weights: Vec<f64>) -> SsProblem {
    SsProblem::from_weights((0..n).map(NodeId::new).collect(), weights).expect("valid weights")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn woss_output_is_a_permutation_with_consistent_cost((n, weights) in weight_matrix(12)) {
        let p = problem(n, weights);
        let ordering = woss(&p);
        prop_assert!(ordering.is_permutation_of(&p));
        prop_assert!((ordering.cost() - p.ordering_cost(ordering.positions())).abs() < 1e-9);
        prop_assert!(ordering.cost() >= 0.0);
    }

    #[test]
    fn exact_is_a_lower_bound_for_every_heuristic((n, weights) in weight_matrix(8)) {
        let p = problem(n, weights);
        let best = exact_ordering(&p).expect("within exact limit");
        for candidate in [
            woss(&p),
            baselines::identity_ordering(&p),
            baselines::random_ordering(&p, 3),
            baselines::best_start_nearest_neighbor(&p),
        ] {
            prop_assert!(best.cost() <= candidate.cost() + 1e-9);
        }
    }

    #[test]
    fn reversing_an_ordering_preserves_its_cost((n, weights) in weight_matrix(10)) {
        let p = problem(n, weights);
        let ordering = woss(&p);
        let mut reversed = ordering.positions().to_vec();
        reversed.reverse();
        prop_assert!((p.ordering_cost(&reversed) - ordering.cost()).abs() < 1e-9);
    }

    #[test]
    fn similarity_is_symmetric_bounded_and_reflexive(bits_a in proptest::collection::vec(any::<bool>(), 1..200),
                                                     bits_b in proptest::collection::vec(any::<bool>(), 1..200)) {
        let len = bits_a.len().min(bits_b.len());
        let a = Waveform::from_levels(bits_a[..len].to_vec());
        let b = Waveform::from_levels(bits_b[..len].to_vec());
        let s_ab = similarity(&a, &b);
        let s_ba = similarity(&b, &a);
        prop_assert!((s_ab - s_ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&s_ab));
        prop_assert!((similarity(&a, &a) - 1.0).abs() < 1e-12);
        // Miller factor stays in [0, 2] and is anti-monotone in similarity.
        prop_assert!((0.0..=2.0).contains(&miller_factor(s_ab)));
    }

    #[test]
    fn posynomial_error_ratio_matches_theorem1(x in 0.0f64..0.95, k in 1usize..8) {
        let exact = exact_factor(x);
        let approx = truncated_factor(x, k);
        let measured = (exact - approx) / exact;
        prop_assert!((measured - truncation_error_ratio(x, k)).abs() < 1e-9);
        // Truncation never overestimates for non-negative x.
        prop_assert!(approx <= exact + 1e-12);
    }
}
