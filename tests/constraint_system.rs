//! Property tests of the composable constraint system (the refactor seam):
//!
//! * the generalized constraint path configured with **only** the paper's
//!   three global bounds is bitwise identical to the legacy
//!   `ncgws_core::reference` solver on random instances;
//! * per-net (channel-local) crosstalk caps and per-node driven-load caps
//!   are actually met on random channels when the run reports feasible, and
//!   reported as per-family slack violations when it does not;
//! * engines reused across constrained and unconstrained solves never leak
//!   stale denominator contributions.

use ncgws::circuit::NodeKind;
use ncgws::core::{
    build_coupling, reference, ConstraintBounds, ConstraintSet, LrsSolver, Multipliers, OgwsSolver,
    OptimizerConfig, OrderingStrategy, SizingEngine, SizingProblem,
};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use ncgws::Flow;
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("cs-{seed}"), gates, gates * 2 + 8)
            .with_seed(seed)
            .with_num_patterns(8),
    )
    .generate()
    .expect("generation succeeds")
}

fn loose_bounds() -> ConstraintBounds {
    ConstraintBounds {
        delay: 1e15,
        total_capacitance: 1e15,
        crosstalk: 1e15,
    }
}

/// The feasibility tolerance the solver declares feasibility with (see
/// `ogws::FEASIBILITY_TOLERANCE`), doubled for the recomputation margin.
const TOL: f64 = 2e-3;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The generalized constraint path — `SizingProblem::with_constraints`
    /// carrying an **empty** set, multipliers with attached (empty) blocks,
    /// the LRS solve that aggregates the extra denominator — must be
    /// bitwise identical to the seed's allocate-per-call reference loop.
    #[test]
    fn empty_constraint_set_is_bitwise_identical_to_reference(
        seed in 0u64..400,
        gates in 12usize..36,
        edge_scale in 1e-5f64..1e2,
        beta in 0.0f64..10.0,
        gamma in 0.0f64..10.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem = SizingProblem::with_constraints(
            &inst.circuit,
            &ordering.coupling,
            loose_bounds(),
            ConstraintSet::new(),
        )
        .expect("problem");
        let mut multipliers = Multipliers::uniform(&inst.circuit, edge_scale, 0.0);
        multipliers.beta = beta;
        multipliers.gamma = gamma;
        multipliers.attach_extras(&problem.extras, 1.0);

        let naive = reference::lrs_solve(&problem, &multipliers, 40, 1e-7);
        let engine_path = LrsSolver::new(40, 1e-7).solve(&problem, &multipliers);

        prop_assert_eq!(&naive.sizes, &engine_path.sizes, "sizes must match bitwise");
        prop_assert_eq!(naive.sweeps, engine_path.sweeps);
        prop_assert_eq!(naive.converged, engine_path.converged);
    }

    /// Per-net crosstalk caps and driven-load caps are enforced: on a
    /// feasible run every lowered constraint holds at the final sizes (also
    /// recomputed independently of the constraint's own linear model), and
    /// on an infeasible run the per-family slack report names the
    /// violation.
    #[test]
    fn per_net_and_driven_load_caps_are_met_or_reported(
        seed in 0u64..300,
        gates in 15usize..40,
        net_factor in 0.45f64..0.95,
        load_factor in 0.5f64..0.95,
    ) {
        let inst = instance(seed, gates);
        let config = OptimizerConfig::builder()
            .max_iterations(60)
            .max_lrs_sweeps(20)
            .per_net_crosstalk_cap(net_factor)
            .driven_load_cap(load_factor)
            .build()
            .expect("valid configuration");
        let ordered = Flow::prepare(&inst, config).expect("prepare").order().expect("order");
        let extras = ordered.extra_constraints().clone();
        prop_assert_eq!(extras.num_families(), 2);
        let sized = ordered.size().expect("size");
        let sizes = sized.sizes();
        let graph = &inst.circuit;
        let coupling = &ordered.ordering().coupling;

        // The slack report always covers every family.
        prop_assert_eq!(sized.report.constraint_slacks.len(), 2);
        for slack in &sized.report.constraint_slacks {
            prop_assert!(slack.worst_relative_violation.is_finite());
        }

        if sized.report.feasible {
            // Per-net: each channel's linearized crosstalk, recomputed from
            // the coupling set, stays below its cap.
            let per_net = &extras.families()[0];
            for constraint in per_net.constraints() {
                let idx: usize = constraint
                    .label()
                    .strip_prefix("net-")
                    .expect("per-net labels")
                    .parse()
                    .expect("channel index");
                let recomputed =
                    coupling.group_crosstalk(graph, sizes, &inst.channels[idx]);
                prop_assert!(
                    recomputed <= constraint.bound() * (1.0 + TOL),
                    "channel {idx}: {recomputed} vs cap {}",
                    constraint.bound()
                );
            }
            // Driven load: each capped node's directly attached component
            // load, recomputed from the graph, stays below its cap.
            let driven = &extras.families()[1];
            for constraint in driven.constraints() {
                let id = graph.node_by_name(constraint.label()).expect("node label");
                let mut load = 0.0;
                for &child in graph.fanout(id) {
                    match graph.node(child).kind {
                        NodeKind::Gate(_) | NodeKind::Wire => {
                            load += graph.capacitance(child, sizes);
                        }
                        NodeKind::Sink => load += graph.node(id).attrs.output_load,
                        _ => {}
                    }
                }
                prop_assert!(
                    load <= constraint.bound() * (1.0 + TOL),
                    "node {}: {load} vs cap {}",
                    constraint.label(),
                    constraint.bound()
                );
            }
            // The slack report agrees.
            for slack in &sized.report.constraint_slacks {
                prop_assert!(slack.satisfied, "{slack:?}");
            }
        } else {
            // Infeasible-with-slack: the report must localize the failure —
            // either an extra family's violation or the global bounds'.
            let worst_extra = sized
                .report
                .constraint_slacks
                .iter()
                .map(|s| s.worst_relative_violation)
                .fold(f64::NEG_INFINITY, f64::max);
            let last = sized.report.iteration_records.last().expect("iterations ran");
            prop_assert!(
                worst_extra > TOL
                    || last.delay_violation > 0.0
                    || last.power_violation > 0.0
                    || last.crosstalk_violation > 0.0,
                "an infeasible run must report what failed"
            );
        }
    }

    /// One engine serving constrained and unconstrained solves never leaks
    /// the extra-family denominator between runs: a legacy solve after a
    /// constrained solve matches a fresh legacy solve bitwise.
    #[test]
    fn engine_reuse_across_constraint_sets_is_leak_free(
        seed in 0u64..200,
        gates in 12usize..30,
        factor in 0.5f64..0.9,
    ) {
        let inst = instance(seed, gates);
        let config = OptimizerConfig {
            max_iterations: 12,
            ..OptimizerConfig::default()
        };
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let graph = &inst.circuit;

        // A constrained problem sharing the legacy problem's coupling.
        let capped = {
            let mut set = ConstraintSet::new();
            let initial = graph.maximum_sizes();
            let sums: Vec<(usize, f64)> = graph
                .wire_ids()
                .filter_map(|id| {
                    let a = ordering.coupling.linear_coefficient_sum(id);
                    (a > 0.0).then(|| (graph.component_index(id).unwrap(), a))
                })
                .collect();
            let initial_value: f64 = sums
                .iter()
                .map(|&(dense, a)| a * initial[dense])
                .sum::<f64>();
            set.push(ncgws::ScalarFamily::new(
                "cap",
                ncgws::FamilyKind::Custom,
                vec![ncgws::ScalarConstraint::new(
                    "global-lin",
                    sums,
                    0.0,
                    initial_value * factor,
                )],
            ));
            SizingProblem::with_constraints(graph, &ordering.coupling, loose_bounds(), set)
                .expect("capped problem")
        };
        let legacy =
            SizingProblem::new(graph, &ordering.coupling, loose_bounds()).expect("legacy problem");

        let solver = OgwsSolver::new(config);
        let mut engine = SizingEngine::for_problem(&legacy);
        let fresh_legacy = solver.solve_with(&legacy, &mut engine);
        let constrained = solver.solve_with(&capped, &mut engine);
        let legacy_after = solver.solve_with(&legacy, &mut engine);

        prop_assert_eq!(&fresh_legacy.sizes, &legacy_after.sizes);
        prop_assert_eq!(fresh_legacy.best_gap, legacy_after.best_gap);
        prop_assert_eq!(constrained.extra_multipliers.len(), 1);
        prop_assert!(fresh_legacy.extra_multipliers.is_empty());
    }
}
