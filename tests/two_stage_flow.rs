//! End-to-end integration tests of the two-stage flow across all workspace
//! crates: netlist generation → logic simulation / similarity → WOSS wire
//! ordering → coupling model → Lagrangian-relaxation sizing → reporting.

use ncgws::circuit::{total_area, total_capacitance, TimingAnalysis};
use ncgws::core::baseline::lr_delay_area;
use ncgws::core::{
    build_coupling, kkt, Multipliers, Optimizer, OptimizerConfig, OrderingStrategy, SizingProblem,
};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};

fn instance(gates: usize, wires: usize, seed: u64) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("it-{gates}-{seed}"), gates, wires)
            .with_seed(seed)
            .with_num_patterns(48),
    )
    .generate()
    .expect("generation succeeds")
}

fn quick_config() -> OptimizerConfig {
    OptimizerConfig {
        max_iterations: 60,
        ..OptimizerConfig::default()
    }
}

#[test]
fn constraints_hold_on_the_returned_sizing() {
    let inst = instance(120, 260, 1);
    let outcome = Optimizer::new(quick_config())
        .run(&inst)
        .expect("optimization succeeds");
    assert!(outcome.report.feasible);

    // Re-derive every constraint independently from the returned sizes.
    let graph = &inst.circuit;
    let coupling = &outcome.ordering.coupling;
    let sizes = outcome.sizes();
    let initial = quick_config().initial_sizes(graph);

    let extra = coupling.delay_load_per_node(graph, sizes);
    let timing = TimingAnalysis::run(graph, sizes, Some(&extra));
    let extra0 = coupling.delay_load_per_node(graph, &initial);
    let initial_delay = TimingAnalysis::run(graph, &initial, Some(&extra0)).critical_path_delay;
    assert!(
        timing.critical_path_delay <= initial_delay * 1.002,
        "delay bound (1.0x initial) violated: {} vs {}",
        timing.critical_path_delay,
        initial_delay
    );

    let cap = total_capacitance(graph, sizes);
    let initial_cap = total_capacitance(graph, &initial);
    assert!(
        cap <= initial_cap * 0.13 * 1.002 + 1e-9,
        "power bound violated"
    );

    // Area must improve dramatically relative to the max-size start.
    assert!(total_area(graph, sizes) < total_area(graph, &initial) * 0.2);

    // Sizes stay inside their bounds.
    assert!(graph.check_sizes(sizes).is_ok());
}

#[test]
fn noise_constraint_is_enforced_relative_to_initial_coupling() {
    let inst = instance(100, 220, 2);
    let config = quick_config();
    let outcome = Optimizer::new(config)
        .run(&inst)
        .expect("optimization succeeds");
    let r = &outcome.report;
    // The bound is 11.5% of the initial exact coupling, clamped to what the
    // layout's irreducible fringing allows; either way the final noise must be
    // well below the initial noise.
    assert!(r.final_metrics.noise_pf <= r.initial_metrics.noise_pf * 0.35);
    assert!(r.improvements.noise_pct >= 65.0);
}

#[test]
fn woss_ordering_is_used_and_beats_identity_loading() {
    let inst = instance(80, 180, 3);
    let woss = build_coupling(&inst, OrderingStrategy::Woss, false).expect("woss coupling");
    let identity =
        build_coupling(&inst, OrderingStrategy::Identity, false).expect("identity coupling");
    assert!(woss.total_effective_loading <= identity.total_effective_loading + 1e-9);
    // Both produce one coupling pair per adjacent track.
    assert_eq!(woss.coupling.len(), identity.coupling.len());
}

#[test]
fn optimizer_beats_noise_oblivious_baseline_on_noise() {
    let inst = instance(90, 200, 4);
    let config = quick_config();
    let full = Optimizer::new(config.clone()).run(&inst).expect("full run");
    let baseline = lr_delay_area(&inst, &config).expect("baseline run");
    assert!(full.report.final_metrics.noise_pf <= baseline.metrics.noise_pf + 1e-9);
}

#[test]
fn kkt_residuals_are_reasonable_at_the_returned_solution() {
    let inst = instance(60, 130, 5);
    let config = quick_config();
    let outcome = Optimizer::new(config.clone())
        .run(&inst)
        .expect("run succeeds");

    // Rebuild the problem the optimizer solved and check primal feasibility
    // through the KKT helper (multipliers themselves are internal, so only
    // the primal-side residuals are asserted tightly here).
    let initial = config.initial_sizes(&inst.circuit);
    let initial_metrics =
        ncgws::core::CircuitMetrics::evaluate(&inst.circuit, &outcome.ordering.coupling, &initial);
    let bounds = ncgws::core::ConstraintBounds::from_initial(&initial_metrics, &config)
        .clamped_to_feasible(&inst.circuit, &outcome.ordering.coupling);
    let problem =
        SizingProblem::new(&inst.circuit, &outcome.ordering.coupling, bounds).expect("problem");
    let multipliers = Multipliers::uniform(&inst.circuit, 0.0, 0.0);
    let residuals = kkt::kkt_residuals(&problem, outcome.sizes(), &multipliers);
    assert!(residuals.primal_feasibility <= 2e-3, "{residuals:?}");
    assert_eq!(residuals.negativity, 0.0);
}

#[test]
fn reports_are_serializable_and_reproducible() {
    let inst = instance(50, 110, 6);
    let a = Optimizer::new(quick_config()).run(&inst).expect("run a");
    let b = Optimizer::new(quick_config()).run(&inst).expect("run b");
    assert_eq!(a.sizes(), b.sizes());
    assert_eq!(a.report.final_metrics, b.report.final_metrics);
    let json = serde_json::to_string(&a.report).expect("report serializes");
    assert!(json.contains("final_metrics"));
}

#[test]
fn effective_coupling_mode_runs_and_respects_bounds() {
    let inst = instance(70, 150, 7);
    let config = OptimizerConfig {
        effective_coupling: true,
        ..quick_config()
    };
    let outcome = Optimizer::new(config)
        .run(&inst)
        .expect("effective mode runs");
    assert!(outcome.report.feasible);
    assert!(outcome.report.final_metrics.noise_pf < outcome.report.initial_metrics.noise_pf);
}

#[test]
fn ordering_strategies_plug_into_the_full_flow() {
    let inst = instance(60, 130, 8);
    for strategy in [
        OrderingStrategy::Woss,
        OrderingStrategy::Identity,
        OrderingStrategy::Random { seed: 1 },
        OrderingStrategy::BestStartNearestNeighbor,
    ] {
        let config = OptimizerConfig {
            ordering: strategy,
            max_iterations: 30,
            ..quick_config()
        };
        let outcome = Optimizer::new(config).run(&inst).expect("strategy runs");
        assert!(outcome.report.final_metrics.area_um2 > 0.0, "{strategy:?}");
    }
}
