//! The `race-check` shadow claim map (`ncgws_circuit::race`).
//!
//! Two directions, matching the feature's contract:
//!
//! * **Injection**: a proptest simulates a parallel pass in which one chunk
//!   writes an index owned by another chunk of the same pass, through the
//!   real `SharedMut` write path, and asserts the checker panics on exactly
//!   the overlapping write (disjoint prefixes stay silent).
//! * **Clean runs**: a full two-stage sizing run — every leveled and flat
//!   kernel pass of the real engine — completes without a claim panic,
//!   i.e. the level partition the kernels rely on actually holds.
//!
//! Compiled only under `--features race-check`; combine with `parallel`
//! (`cargo test --features "parallel race-check"`) to drive the threaded
//! pool paths as well.

#![cfg(feature = "race-check")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use ncgws::circuit::{race, SharedMut};
use ncgws::core::{Flow, OptimizerConfig, ParallelPolicy, SolveStrategy};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

/// `(len, split, overlap)`: a buffer of `len` slots partitioned into chunk 0
/// = `0..split` and chunk 1 = `split..len`, plus one `overlap` index inside
/// chunk 0's range that chunk 1 will illegally write.
fn layout() -> impl Strategy<Value = (usize, usize, usize)> {
    (8usize..64).prop_flat_map(|len| {
        (1usize..len - 1).prop_flat_map(move |split| (Just(len), Just(split), 0..split))
    })
}

/// Writes `range` of `view` as `(pass, owner)` through the instrumented
/// `SharedMut::set` path.
fn write_range(view: SharedMut<'_, f64>, pass: u64, owner: u64, range: std::ops::Range<usize>) {
    let _ctx = race::enter(pass, owner);
    for i in range {
        // SAFETY: `i` is within the slice `view` was built from, and the
        // two owners of this test pass write disjoint ranges (the injected
        // overlap is the property under test — the checker must catch it
        // before it could matter).
        unsafe { view.set(i, owner as f64 + i as f64) };
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Disjoint chunk writes pass silently; the single injected overlapping
    /// write — chunk 1 touching an index in chunk 0's range, same pass —
    /// panics.
    #[test]
    fn injected_overlapping_write_is_detected((len, split, overlap) in layout()) {
        let mut buf = vec![0.0f64; len];
        let view = SharedMut::new(&mut buf);
        let pass = race::begin_pass();
        let chunk0 = race::owner_id(0, 0);
        let chunk1 = race::owner_id(0, 1);

        // The legitimate pass: both chunks cover their own partition.
        write_range(view, pass, chunk0, 0..split);
        write_range(view, pass, chunk1, split..len);

        // The injected fault: chunk 1 re-enters the same pass and writes an
        // index chunk 0 already claimed.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ctx = race::enter(pass, chunk1);
            // SAFETY: `overlap < split <= len`, in range of `view`.
            unsafe { view.set(overlap, -1.0) };
        }));
        prop_assert!(
            outcome.is_err(),
            "overlap at index {overlap} (split {split}, len {len}) was not detected"
        );

        // A fresh pass over the same buffer is clean again: stale claims
        // from the faulted pass must not leak forward.
        let next = race::begin_pass();
        write_range(view, next, chunk0, 0..len);
    }
}

/// The real engine under the checker: a full two-stage run issues every
/// leveled and flat kernel pass with claim contexts active, and must finish
/// without an overlap panic at any thread count.
#[test]
fn full_sizing_run_stays_claim_clean() {
    let inst: ProblemInstance = SyntheticGenerator::new(
        CircuitSpec::new("race-clean", 24, 53)
            .with_seed(11)
            .with_num_patterns(8)
            .with_channel_size(5),
    )
    .generate()
    .expect("generation succeeds");
    for policy in [
        ParallelPolicy::Sequential,
        ParallelPolicy::threads(1),
        ParallelPolicy::threads(2),
    ] {
        let config = OptimizerConfig::builder()
            .max_iterations(30)
            .solve_strategy(SolveStrategy::adaptive())
            .parallel(policy)
            .build()
            .expect("valid configuration");
        Flow::prepare(&inst, config)
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("size");
    }
}
