//! Facade-level contract tests for checkpointing, resume, and the serving
//! layer:
//!
//! * **kill/resume equivalence** (property tests): a run killed at an
//!   arbitrary iteration and resumed from its on-interrupt snapshot must
//!   reproduce the uninterrupted run — bitwise under the default exact
//!   strategy, to 1e-6 under the adaptive strategy, and bitwise for
//!   iteration-0 snapshots under both;
//! * **serde round trips**: every [`StopReason`] variant and the full
//!   [`Snapshot`] survive JSON serialization;
//! * **memory accounting**: `Server::memory_bytes` covers queued specs and
//!   retained snapshots;
//! * **fault injection**: a server fed budget-killed and cancelled jobs
//!   drains with every job accounted for.

use ncgws::core::snapshot::json;
use ncgws::core::{OptimizerConfig, RunControl, StopReason};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use ncgws::{
    CheckpointPolicy, Flow, JobInput, JobSpec, Server, ServerConfig, Snapshot, SnapshotStore,
};
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("ckpt-{seed}"), gates, gates * 2 + 10)
            .with_seed(seed)
            .with_num_patterns(16),
    )
    .generate()
    .expect("generation succeeds")
}

fn quick_config() -> OptimizerConfig {
    OptimizerConfig::builder()
        .max_iterations(30)
        .max_lrs_sweeps(20)
        .build()
        .expect("valid configuration")
}

fn adaptive_config() -> OptimizerConfig {
    OptimizerConfig::builder()
        .max_iterations(30)
        .max_lrs_sweeps(20)
        .adaptive_schedule()
        .build()
        .expect("valid configuration")
}

/// Runs cold, kills a second run after `k` iterations (capturing the
/// on-interrupt snapshot), resumes from the snapshot (after a JSON round
/// trip), and returns `(cold, snapshot, resumed)`.
fn kill_and_resume(
    inst: &ProblemInstance,
    config: &OptimizerConfig,
    k: usize,
) -> (
    ncgws::core::flow::SizedOutcome,
    Snapshot,
    ncgws::core::flow::SizedOutcome,
) {
    let cold = Flow::prepare(inst, config.clone())
        .expect("prepare")
        .order()
        .expect("order")
        .size()
        .expect("cold run");

    let store = SnapshotStore::new();
    let control = RunControl::new()
        .with_iteration_budget(k)
        .with_checkpoints(&store, CheckpointPolicy::new().on_interrupt(true));
    let killed = Flow::prepare(inst, config.clone())
        .expect("prepare")
        .order()
        .expect("order")
        .size_with(&control)
        .expect("killed run");
    assert_eq!(killed.report.stop_reason, StopReason::BudgetExhausted);

    let snapshot = store.take().expect("on-interrupt snapshot captured");
    assert_eq!(snapshot.iterations_done, k);

    // The snapshot must survive its own JSON form exactly.
    let snapshot = Snapshot::from_json(&snapshot.to_json()).expect("snapshot JSON parses");

    let resumed = Flow::prepare(inst, config.clone())
        .expect("prepare")
        .order()
        .expect("order")
        .size_resume(&snapshot, &RunControl::new())
        .expect("resumed run");
    (cold, snapshot, resumed)
}

fn relative_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Exact strategy: resume is bitwise — same sizes, same metrics, and
    /// not a single completed iteration is redone. `k` sweeps the whole
    /// range of kill points including 0 (the pre-first-iteration
    /// snapshot).
    #[test]
    fn kill_resume_is_bitwise_under_exact(seed in 0u64..300, gates in 15usize..45, kill in 0usize..64) {
        let inst = instance(seed, gates);
        let config = quick_config();
        let probe = Flow::prepare(&inst, config.clone())
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("probe run");
        if probe.report.iterations < 1 {
            return;
        }
        let k = kill % probe.report.iterations;

        let (cold, snapshot, resumed) = kill_and_resume(&inst, &config, k);
        prop_assert_eq!(resumed.sizes(), cold.sizes());
        prop_assert_eq!(&resumed.report.final_metrics, &cold.report.final_metrics);
        prop_assert_eq!(resumed.report.stop_reason, cold.report.stop_reason);
        prop_assert_eq!(resumed.report.feasible, cold.report.feasible);
        prop_assert_eq!(
            snapshot.iterations_done + resumed.report.iterations,
            cold.report.iterations,
            "resume must redo no completed iterations"
        );
    }

    /// Adaptive strategy: the restored schedule state re-derives its
    /// warm-start decisions, so resume matches to 1e-6 rather than
    /// bitwise.
    #[test]
    fn kill_resume_matches_adaptive_to_1e6(seed in 0u64..300, gates in 15usize..45, kill in 1usize..64) {
        let inst = instance(seed, gates);
        let config = adaptive_config();
        let probe = Flow::prepare(&inst, config.clone())
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("probe run");
        if probe.report.iterations < 2 {
            return;
        }
        let k = 1 + kill % (probe.report.iterations - 1);

        let (cold, _snapshot, resumed) = kill_and_resume(&inst, &config, k);
        let cold_metrics = &cold.report.final_metrics;
        let warm_metrics = &resumed.report.final_metrics;
        prop_assert!(relative_close(warm_metrics.area_um2, cold_metrics.area_um2));
        prop_assert!(relative_close(warm_metrics.delay_ps, cold_metrics.delay_ps));
        prop_assert!(relative_close(warm_metrics.noise_pf, cold_metrics.noise_pf));
        for (a, b) in resumed.sizes().iter().zip(cold.sizes()) {
            prop_assert!(relative_close(*a, *b), "size diverged: {} vs {}", a, b);
        }
    }
}

/// An iteration-0 snapshot (killed before the first iteration completed)
/// resumes bitwise under *both* strategies: nothing has happened yet, so
/// the resumed run IS the cold run.
#[test]
fn iteration_zero_snapshot_resumes_bitwise_under_both_strategies() {
    let inst = instance(42, 24);
    for config in [quick_config(), adaptive_config()] {
        let (cold, snapshot, resumed) = kill_and_resume(&inst, &config, 0);
        assert_eq!(snapshot.iterations_done, 0);
        assert_eq!(resumed.sizes(), cold.sizes());
        assert_eq!(resumed.report.final_metrics, cold.report.final_metrics);
        assert_eq!(resumed.report.iterations, cold.report.iterations);
    }
}

/// Every `StopReason` variant serializes to its name and parses back.
#[test]
fn stop_reason_serde_round_trips_every_variant() {
    let variants = [
        (StopReason::Converged, "Converged"),
        (StopReason::Stagnated, "Stagnated"),
        (StopReason::IterationLimit, "IterationLimit"),
        (StopReason::BudgetExhausted, "BudgetExhausted"),
        (StopReason::Cancelled, "Cancelled"),
        (StopReason::DeadlineExpired, "DeadlineExpired"),
    ];
    for (reason, name) in variants {
        let encoded = serde_json::to_string(&reason).expect("serializes");
        assert_eq!(encoded, format!("\"{name}\""));
        let value = json::parse(&encoded).expect("valid JSON");
        let decoded = match value.as_str().expect("unit variant is a string") {
            "Converged" => StopReason::Converged,
            "Stagnated" => StopReason::Stagnated,
            "IterationLimit" => StopReason::IterationLimit,
            "BudgetExhausted" => StopReason::BudgetExhausted,
            "Cancelled" => StopReason::Cancelled,
            "DeadlineExpired" => StopReason::DeadlineExpired,
            other => panic!("unknown StopReason encoding {other:?}"),
        };
        assert_eq!(decoded, reason);
    }
}

/// The snapshot's JSON form is a faithful round trip (field-for-field
/// equality via `PartialEq`), rejects garbage, and reports a plausible
/// memory footprint.
#[test]
fn snapshot_json_round_trip_is_exact() {
    let inst = instance(7, 20);
    let store = SnapshotStore::new();
    let control = RunControl::new()
        .with_iteration_budget(3)
        .with_checkpoints(&store, CheckpointPolicy::new().on_interrupt(true));
    Flow::prepare(&inst, quick_config())
        .expect("prepare")
        .order()
        .expect("order")
        .size_with(&control)
        .expect("killed run");
    let snapshot = store.take().expect("snapshot captured");

    let round_tripped = Snapshot::from_json(&snapshot.to_json()).expect("parses");
    assert_eq!(round_tripped, snapshot);
    assert!(snapshot.memory_bytes() >= snapshot.sizes.len() * std::mem::size_of::<f64>());
    assert!(Snapshot::from_json("{not json").is_err());
    assert!(Snapshot::from_json("[1,2,3]").is_err());
}

/// `Server::memory_bytes` is exactly the queue + snapshot gauges, and the
/// snapshot gauge covers a retained checkpoint.
#[test]
fn server_memory_accounting_covers_queue_and_snapshots() {
    let spec = CircuitSpec::new("mem", 20, 45)
        .with_seed(9)
        .with_num_patterns(16);
    let job = JobSpec::new(JobInput::Synthetic(spec), quick_config()).with_iteration_budget(2);
    assert!(job.memory_bytes() > 0);

    let server = Server::start(ServerConfig {
        workers: 1,
        max_attempts: 64,
        ..ServerConfig::default()
    });
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(server.submit(job.clone()).expect("queue accepts"));
    }
    for id in &ids {
        server.wait(*id).expect("job resolves");
    }
    let stats = server.stats();
    assert!(
        stats.snapshot_bytes > 0,
        "budget kills must retain snapshots"
    );
    assert_eq!(
        server.memory_bytes(),
        stats.queue_bytes + stats.snapshot_bytes
    );
    let snapshot = server.snapshot_of(ids[0]).expect("retained checkpoint");
    assert!(stats.snapshot_bytes >= snapshot.memory_bytes());
    server.drain();
}

/// Fault injection through the facade: budget-killed, deadline-killed and
/// cancelled jobs all drain with zero lost jobs, and a resumed completion
/// matches a cold run bitwise (exact strategy).
#[test]
fn server_fault_injection_drains_with_zero_lost_jobs() {
    let config = quick_config();
    let server = Server::start(ServerConfig {
        workers: 2,
        checkpoint_every: Some(4),
        max_attempts: 64,
        ..ServerConfig::default()
    });

    let mut ids = Vec::new();
    for i in 0..12u64 {
        let spec = CircuitSpec::new(format!("fault-{i}"), 18 + (i as usize % 5), 50)
            .with_seed(100 + i)
            .with_num_patterns(16);
        let mut job = JobSpec::new(JobInput::Synthetic(spec), config.clone())
            .with_tenant(format!("t{}", i % 3));
        if i % 2 == 0 {
            job = job.with_iteration_budget(3);
        }
        if i % 5 == 4 {
            job = job.with_attempt_timeout_ms(10);
        }
        ids.push(server.submit(job).expect("queue accepts"));
    }
    // Cancel two immediately; the rest must still resolve. (No assert on
    // the return value: a fast worker may already have finished them.)
    server.cancel(ids[1]);
    server.cancel(ids[7]);

    let mut resumed_completed = None;
    for (i, id) in ids.iter().enumerate() {
        let outcome = server.wait(*id).expect("job resolves");
        if !outcome.stop_reason.is_interrupted() && outcome.resumed_attempts > 0 {
            resumed_completed.get_or_insert((i as u64, outcome));
        }
    }
    let stats = server.drain();
    assert_eq!(
        stats.completed + stats.cancelled + stats.failed,
        stats.submitted,
        "every job is accounted for"
    );
    assert_eq!(stats.failed, 0, "the attempt cap must never be reached");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(
        stats.requeued > 0,
        "budget jobs must be killed and requeued"
    );

    let (i, outcome) = resumed_completed.expect("some budget job completed after resuming");
    let inst = SyntheticGenerator::new(
        CircuitSpec::new(format!("fault-{i}"), 18 + (i as usize % 5), 50)
            .with_seed(100 + i)
            .with_num_patterns(16),
    )
    .generate()
    .expect("generation succeeds");
    let cold = Flow::prepare(&inst, config)
        .expect("prepare")
        .order()
        .expect("order")
        .size()
        .expect("cold");
    assert_eq!(outcome.iterations, cold.report.iterations);
    assert_eq!(
        outcome.final_metrics.expect("completed jobs carry metrics"),
        cold.report.final_metrics
    );
}

/// Snapshot JSON for the mutation property below, built once (a real
/// mid-run checkpoint, not a synthetic document).
fn mutation_fixture() -> &'static (ProblemInstance, String) {
    static FIXTURE: std::sync::OnceLock<(ProblemInstance, String)> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let inst = instance(3, 18);
        let store = SnapshotStore::new();
        let control = RunControl::new()
            .with_iteration_budget(2)
            .with_checkpoints(&store, CheckpointPolicy::new().on_interrupt(true));
        Flow::prepare(&inst, quick_config())
            .expect("prepare")
            .order()
            .expect("order")
            .size_with(&control)
            .expect("killed run");
        let json = store.take().expect("snapshot captured").to_json();
        (inst, json)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Robustness: arbitrary single-byte mutations of a valid snapshot
    /// document either fail to parse (`Err`) or produce a snapshot that
    /// still answers `validate_for` — never a panic, never an
    /// out-of-bounds resume. Truncations must always be rejected.
    #[test]
    fn mutated_snapshot_json_never_panics(pos in 0usize..100_000, byte in 0u8..=255u8, cut in 0usize..100_000) {
        let (inst, json) = mutation_fixture();

        // Single-byte mutation (any value, any position).
        let mut bytes = json.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok(snapshot) = Snapshot::from_json(&text) {
                // A mutation that survives parsing (e.g. a flipped digit)
                // must still be safe to screen: validation may accept or
                // reject it, but must not panic or index out of bounds.
                let _ = snapshot.validate_for(&inst.circuit);
            }
        }

        // Any strict prefix is an incomplete document: always an error.
        let cut = cut % json.len();
        if json.is_char_boundary(cut) {
            prop_assert!(Snapshot::from_json(&json[..cut]).is_err());
        }
    }
}
