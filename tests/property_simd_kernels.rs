//! Property pins for the 4-lane vectorized sweep kernels (this PR's SoA
//! rewrite of the hot inner loops).
//!
//! Two contracts, mirroring the engine's documentation:
//!
//! * **Bitwise** — wherever the lane rewrite preserves the scalar reduction
//!   order (the fused Theorem-5 sweeps, the closed-form resize, the blocked
//!   coupling scatters), a `ParallelPolicy::Level` run must equal the
//!   untouched `Sequential` scalar oracle bit for bit. Pinned end-to-end
//!   here under the exact solve strategy, and per-kernel for the delay
//!   evaluation (whose lanes drop the kind-tag branch entirely).
//! * **Epsilon (1e-6)** — the lane-blocked *aggregate* reductions
//!   (`total_capacitance`, `extra_denom`, area/crosstalk sums) reassociate
//!   partial sums, so adaptive runs carry the same 1e-6 end-to-end contract
//!   the adaptive schedule itself ships under.
//!
//! Shapes deliberately cover every lane-remainder class (`n % 4 ∈
//! {0,1,2,3}`, both as varying circuit sizes and as exact kernel ranges),
//! frozen/unfrozen mixes (the adaptive active-set schedule freezes calm
//! components mid-run), and extreme magnitudes (subnormal charged caps,
//! 1e12 spreads).

use ncgws::circuit::{CircuitTopology, ElmoreAnalyzer, SharedMut, SizeVector};
use ncgws::core::{Flow, OptimizerConfig, ParallelPolicy, SizedOutcome, SolveStrategy};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("simd-{seed}-{gates}"), gates, gates * 2 + 3)
            .with_seed(seed)
            .with_num_patterns(8)
            .with_channel_size(4),
    )
    .generate()
    .expect("generation succeeds")
}

fn run(inst: &ProblemInstance, strategy: SolveStrategy, parallel: ParallelPolicy) -> SizedOutcome {
    let config = OptimizerConfig::builder()
        .max_iterations(40)
        .solve_strategy(strategy)
        .parallel(parallel)
        .per_net_crosstalk_cap(0.95)
        .driven_load_cap(1.5)
        .build()
        .expect("valid configuration");
    Flow::prepare(inst, config)
        .expect("prepare")
        .order()
        .expect("order")
        .size()
        .expect("size")
}

/// `|a - b| ≤ tol · max(|a|, 1)` — the engine's end-to-end epsilon contract.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Exact strategy: the laned single-thread grid (`threads(1)`) is
    /// bitwise the scalar sequential oracle, for circuit sizes spanning all
    /// four lane-remainder classes. The exact strategy keeps the
    /// reassociated lane aggregates off, so *every* surface must agree
    /// exactly — sizes, multipliers, metrics, gap.
    #[test]
    fn exact_laned_grid_is_bitwise_pinned_across_lane_remainders(
        seed in 0u64..200,
        base in 4usize..9,
    ) {
        for remainder in 0usize..4 {
            let inst = instance(seed, base * 4 + remainder);
            let scalar = run(&inst, SolveStrategy::Exact, ParallelPolicy::Sequential);
            let laned = run(&inst, SolveStrategy::Exact, ParallelPolicy::threads(1));
            prop_assert_eq!(scalar.sizes(), laned.sizes(), "sizes (r={})", remainder);
            prop_assert_eq!(
                &scalar.ogws.extra_multipliers, &laned.ogws.extra_multipliers,
                "extra_multipliers (r={})", remainder
            );
            prop_assert_eq!(
                &scalar.report.final_metrics, &laned.report.final_metrics,
                "final_metrics (r={})", remainder
            );
            prop_assert_eq!(
                scalar.report.duality_gap, laned.report.duality_gap,
                "duality_gap (r={})", remainder
            );
        }
    }

    /// Adaptive strategy: the laned grid additionally engages the
    /// lane-blocked aggregate reductions, whose reassociated partial sums
    /// ride the adaptive schedule's 1e-6 end-to-end contract. The adaptive
    /// active set freezes calm components mid-run, so this also pins the
    /// frozen/unfrozen compaction of the batched closed form.
    #[test]
    fn adaptive_laned_runs_stay_within_epsilon_of_the_scalar_oracle(
        seed in 0u64..200,
        gates in 16usize..44,
    ) {
        let inst = instance(seed, gates);
        let scalar = run(&inst, SolveStrategy::adaptive(), ParallelPolicy::Sequential);
        let laned = run(&inst, SolveStrategy::adaptive(), ParallelPolicy::threads(1));
        let (xs, xl) = (scalar.sizes(), laned.sizes());
        prop_assert_eq!(xs.len(), xl.len());
        for (i, (a, b)) in xs.iter().zip(xl.iter()).enumerate() {
            prop_assert!(close(*a, *b, 1e-6), "size[{}]: scalar {} laned {}", i, a, b);
        }
        let (ms, ml) = (&scalar.report.final_metrics, &laned.report.final_metrics);
        prop_assert!(close(ms.noise_pf, ml.noise_pf, 1e-6), "noise {} vs {}", ms.noise_pf, ml.noise_pf);
        prop_assert!(close(ms.area_um2, ml.area_um2, 1e-6), "area {} vs {}", ms.area_um2, ml.area_um2);
        prop_assert!(close(ms.delay_ps, ml.delay_ps, 1e-6), "delay {} vs {}", ms.delay_ps, ml.delay_ps);
        prop_assert_eq!(scalar.report.feasible, laned.report.feasible, "feasibility");
    }

    /// Per-kernel pin of the branch-free laned delay evaluation against the
    /// scalar kind-dispatched kernel: bitwise equal for every range
    /// remainder (`0..n-r` forces each tail length) and under extreme
    /// charged-cap magnitudes — subnormal (~1e-310) through 1e12 — where a
    /// reformulated expression would drift first.
    #[test]
    fn delay_kernel_lanes_are_bitwise_pinned_for_all_tails_and_magnitudes(
        (inst, sizes, scales) in (10usize..36, 0u64..500).prop_flat_map(|(gates, seed)| {
            let inst = instance(seed, gates);
            let ncomp = inst.circuit.num_components();
            let nnodes = CircuitTopology::new(&inst.circuit).num_nodes();
            (
                Just(inst),
                proptest::collection::vec(0.1f64..10.0, ncomp),
                // Per-node charged-cap scale factors spanning subnormal to
                // 1e12 — exponents drawn uniformly, then applied as 10^e.
                proptest::collection::vec(-310.0f64..12.0, nnodes),
            )
        }),
    ) {
        let sizes = SizeVector::new(sizes);
        let topo = CircuitTopology::new(&inst.circuit);
        let n = topo.num_nodes();

        // Real downstream caps (source/sink entries zero, as the laned
        // kernel's contract requires), stretched by extreme magnitudes.
        // `scale * 0.0 == 0.0`, so the zero entries survive the stretch.
        let mut caps = ElmoreAnalyzer::new(&inst.circuit).downstream_caps(&sizes, None);
        for (c, e) in caps.charged.iter_mut().zip(&scales) {
            *c *= 10f64.powf(*e);
        }

        let mut node_size = vec![1.0; n];
        topo.fill_node_sizes(sizes.as_slice(), &mut node_size);

        for remainder in 0usize..4 {
            let end = n.saturating_sub(remainder);
            let mut scalar = vec![f64::NAN; n];
            let mut laned = vec![f64::NAN; n];
            // SAFETY: the ranges are in bounds, the slices match the
            // circuit, and each SharedMut is the sole borrower of its slab.
            unsafe {
                topo.delays_chunk(0..end, sizes.as_slice(), &caps.charged, SharedMut::new(&mut scalar));
                topo.delays_chunk_lanes(0..end, &node_size, &caps.charged, SharedMut::new(&mut laned));
            }
            for i in 0..end {
                prop_assert!(
                    scalar[i].to_bits() == laned[i].to_bits(),
                    "delay[{}] (end={}): scalar {:e} laned {:e}",
                    i, end, scalar[i], laned[i]
                );
            }
        }
    }
}
