//! Facade-level contract tests for the durability layer:
//!
//! * **disk snapshot store**: atomic checksummed round trips, the
//!   memory-budget spill/reload policy and its gauges;
//! * **corruption handling**: a corrupted current generation falls back to
//!   the previous good one; when every generation is bad the load is a
//!   typed error, never a panic or a silently-wrong snapshot;
//! * **fault injection**: seeded I/O-error and torn-write faults are
//!   detected by the checksum path; injected worker panics are isolated
//!   and retried under the job's [`RetryPolicy`];
//! * **crash-restart recovery**: a durable server dropped mid-churn (or a
//!   hand-crafted hard-crash journal) recovers with zero lost jobs, and
//!   recovered results match a cold run — bitwise under the exact
//!   strategy, to 1e-6 under the adaptive strategy (property test).

use std::path::PathBuf;
use std::sync::Arc;

use ncgws::core::OptimizerConfig;
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use ncgws::{
    CheckpointPolicy, DiskSnapshotStore, DurableOptions, FaultPlan, Flow, JobId, JobInput, JobSpec,
    JobState, Journal, RetryPolicy, RunControl, Server, ServerConfig, Snapshot, SnapshotStore,
    StoreConfig, StoreError, WriteFault,
};
use proptest::prelude::*;

/// A unique, empty scratch directory per test (process-id qualified so
/// parallel test binaries never collide).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncgws-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("durable-{seed}"), gates, gates * 2 + 10)
            .with_seed(seed)
            .with_num_patterns(16),
    )
    .generate()
    .expect("generation succeeds")
}

fn quick_config() -> OptimizerConfig {
    OptimizerConfig::builder()
        .max_iterations(30)
        .max_lrs_sweeps(20)
        .build()
        .expect("valid configuration")
}

fn adaptive_config() -> OptimizerConfig {
    OptimizerConfig::builder()
        .max_iterations(30)
        .max_lrs_sweeps(20)
        .adaptive_schedule()
        .build()
        .expect("valid configuration")
}

fn job(seed: u64, config: OptimizerConfig) -> JobSpec {
    let spec = CircuitSpec::new(format!("durable-{seed}"), 20, 45)
        .with_seed(seed)
        .with_num_patterns(16);
    JobSpec::new(JobInput::Synthetic(spec), config)
}

/// A real mid-run snapshot: kill a run after `k` iterations and take the
/// on-interrupt checkpoint.
fn mid_run_snapshot(seed: u64, k: usize) -> Snapshot {
    let inst = instance(seed, 20);
    let store = SnapshotStore::new();
    let control = RunControl::new()
        .with_iteration_budget(k)
        .with_checkpoints(&store, CheckpointPolicy::new().on_interrupt(true));
    Flow::prepare(&inst, quick_config())
        .expect("prepare")
        .order()
        .expect("order")
        .size_with(&control)
        .expect("killed run");
    store.take().expect("on-interrupt snapshot captured")
}

fn relative_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn disk_store_round_trips_and_spills_under_budget() {
    let dir = scratch_dir("spill");
    let snapshot = mid_run_snapshot(11, 3);
    let bytes = snapshot.memory_bytes();

    // Budget below two snapshots: saving three must evict cold entries.
    let store = DiskSnapshotStore::open(
        &dir,
        StoreConfig {
            memory_budget_bytes: Some(bytes + bytes / 2),
        },
    )
    .expect("store opens");
    for id in 1..=3u64 {
        store.save(id, &snapshot).expect("save succeeds");
    }
    let stats = store.stats();
    assert!(stats.spills >= 2, "expected evictions, got {stats:?}");
    assert!(stats.resident_bytes <= (bytes + bytes / 2) as u64);
    assert!(stats.spilled_bytes > 0, "spilled files must be gauged");

    // A spilled snapshot reloads from disk, bit-identical.
    assert!(!store.is_resident(1));
    let reloaded = store
        .load(1)
        .expect("load succeeds")
        .expect("snapshot exists");
    assert_eq!(reloaded.to_json(), snapshot.to_json());
    assert!(store.stats().reloads >= 1);

    // A fresh store (fresh process) reads everything back from disk.
    let fresh = DiskSnapshotStore::open(&dir, StoreConfig::default()).expect("store reopens");
    for id in 1..=3u64 {
        let from_disk = fresh.load(id).expect("load").expect("exists");
        assert_eq!(from_disk.to_json(), snapshot.to_json());
    }
    assert_eq!(fresh.load(99).expect("clean miss"), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_current_generation_falls_back_to_previous() {
    let dir = scratch_dir("corrupt");
    let old = mid_run_snapshot(12, 2);
    let new = mid_run_snapshot(12, 4);

    let store = DiskSnapshotStore::open(&dir, StoreConfig::default()).expect("store opens");
    store.save(7, &old).expect("first generation");
    store.save(7, &new).expect("second generation");
    drop(store);

    // Flip a payload byte of the current generation: checksum must catch it
    // and the load must fall back to the previous generation.
    let current = dir.join("snap-7.json");
    let mut bytes = std::fs::read(&current).expect("read current");
    let last = bytes.len() - 2;
    bytes[last] ^= 0x20;
    std::fs::write(&current, &bytes).expect("corrupt current");

    let store = DiskSnapshotStore::open(&dir, StoreConfig::default()).expect("store reopens");
    let recovered = store
        .load(7)
        .expect("fallback load succeeds")
        .expect("previous generation exists");
    assert_eq!(recovered.to_json(), old.to_json());
    assert_eq!(store.stats().corrupt_recovered, 1);

    // Corrupt the previous generation too: now the load is a typed error —
    // detected, not a panic and not a silently-wrong snapshot.
    let prev = dir.join("snap-7.json.prev");
    let mut bytes = std::fs::read(&prev).expect("read prev");
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&prev, &bytes).expect("truncate prev");
    let fresh = DiskSnapshotStore::open(&dir, StoreConfig::default()).expect("store reopens");
    match fresh.load(7) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_write_faults_are_detected_by_the_checksum_path() {
    let snapshot = mid_run_snapshot(13, 2);

    // Certain I/O error: the save fails, nothing lands on disk.
    let dir = scratch_dir("io-fault");
    let plan = Arc::new(FaultPlan::new(3).with_io_errors(1.0));
    assert_eq!(plan.write_fault(1, 0), Some(WriteFault::IoError));
    let store = DiskSnapshotStore::open(&dir, StoreConfig::default())
        .expect("store opens")
        .with_faults(Some(Arc::clone(&plan)));
    assert!(store.save(1, &snapshot).is_err());
    assert_eq!(store.stats().write_errors, 1);
    let fresh = DiskSnapshotStore::open(&dir, StoreConfig::default()).expect("reopen");
    assert_eq!(fresh.load(1).expect("clean miss"), None);
    let _ = std::fs::remove_dir_all(&dir);

    // Certain torn write: the save "succeeds" (as a crash mid-write would
    // look), but a fresh process detects the damage on load.
    let dir = scratch_dir("torn-fault");
    let plan = Arc::new(FaultPlan::new(3).with_torn_writes(1.0));
    let store = DiskSnapshotStore::open(&dir, StoreConfig::default())
        .expect("store opens")
        .with_faults(Some(plan));
    store.save(1, &snapshot).expect("torn write looks fine");
    let fresh = DiskSnapshotStore::open(&dir, StoreConfig::default()).expect("reopen");
    match fresh.load(1) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_tolerates_a_torn_final_line_only() {
    let dir = scratch_dir("journal");
    let journal = Journal::open(&dir).expect("journal opens");
    journal
        .append("{\"entry\":\"server\",\"workers\":1}")
        .unwrap();
    journal
        .append("{\"entry\":\"submitted\",\"job\":1}")
        .unwrap();
    drop(journal);

    // A torn final line — the signature of a crash mid-append — is dropped.
    let path = dir.join(ncgws::serve::store::JOURNAL_FILE);
    let mut bytes = std::fs::read(&path).expect("read journal");
    bytes.extend_from_slice(b"{\"entry\":\"dispat");
    std::fs::write(&path, &bytes).expect("tear final line");
    let entries = Journal::read_entries(&dir).expect("torn tail tolerated");
    assert_eq!(entries.len(), 2);

    // Damage *before* the final line is a typed error, not silence.
    let text = String::from_utf8(bytes).unwrap();
    let mangled = text.replacen("{\"entry\":\"submitted\"", "{broken", 1);
    std::fs::write(&path, mangled).expect("corrupt middle line");
    match Journal::read_entries(&dir) {
        Err(StoreError::Journal { .. }) => {}
        other => panic!("expected Journal error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panics_are_isolated_and_retried_to_completion() {
    let dir = scratch_dir("panic-retry");
    // Every first and second attempt panics; the third runs clean, so a
    // job with two retries must complete.
    let plan = Arc::new(
        FaultPlan::new(5)
            .with_panics(1.0, 4)
            .with_faulty_attempt_limit(2),
    );
    let server = Server::start_durable_with(
        &dir,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        DurableOptions {
            faults: Some(Arc::clone(&plan)),
            ..DurableOptions::default()
        },
    )
    .expect("durable server starts");
    let id = server
        .submit(job(21, quick_config()).with_retry(RetryPolicy::retries(2).with_seed(9)))
        .unwrap();
    let outcome = server.wait(id).expect("job finishes");
    assert_eq!(server.job_state(id), Some(JobState::Completed));
    assert_eq!(outcome.attempts, 3, "two panics then a clean attempt");
    let stats = server.drain();
    assert_eq!(stats.panics, 2);
    assert_eq!(stats.attempts_retried, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panic_without_retries_fails_the_job_and_frees_the_tenant_slot() {
    let plan = Arc::new(
        FaultPlan::new(6)
            .with_panics(1.0, 3)
            .with_faulty_attempt_limit(1),
    );
    let server = Server::start_with_faults(
        ServerConfig {
            workers: 1,
            max_in_flight_per_tenant: 1,
            ..ServerConfig::default()
        },
        Arc::clone(&plan),
    );
    let doomed = server.submit(job(31, quick_config())).unwrap();
    let outcome = server.wait(doomed).expect("job settles");
    assert_eq!(server.job_state(doomed), Some(JobState::Failed));
    let reason = outcome.error.expect("failure carries the panic text");
    assert!(
        reason.contains("injected fault"),
        "panic text must surface: {reason}"
    );

    // The tenant's single in-flight slot must be free again: attempt 2 of
    // the next job runs clean (past the faulty-attempt limit)... but its
    // attempt 1 panics, so give it one retry.
    let survivor = server
        .submit(job(32, quick_config()).with_retry(RetryPolicy::retries(1)))
        .unwrap();
    let outcome = server.wait(survivor).expect("job settles");
    assert_eq!(server.job_state(survivor), Some(JobState::Completed));
    assert!(outcome.attempts >= 2);
    let stats = server.drain();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
    assert!(stats.panics >= 2);
}

#[test]
fn retry_backoff_is_deterministic_and_capped() {
    let policy = RetryPolicy::retries(6).with_seed(1234);
    let a: Vec<u64> = (1..=6).map(|r| policy.delay_ms(77, r)).collect();
    let b: Vec<u64> = (1..=6).map(|r| policy.delay_ms(77, r)).collect();
    assert_eq!(a, b, "same (job, retry) must give the same delay");
    let other: Vec<u64> = (1..=6).map(|r| policy.delay_ms(78, r)).collect();
    assert_ne!(a, other, "different jobs must not retry in lockstep");
    for delay in &a {
        assert!(*delay <= 50, "delay {delay} exceeds the policy cap");
    }
    assert_eq!(RetryPolicy::none().delay_ms(1, 1), 0);
}

/// A durable server dropped mid-churn (jobs queued, running, and
/// checkpoint-requeued) recovers with zero lost jobs and finishes the
/// backlog; recovered results match cold runs bitwise under the exact
/// strategy.
#[test]
fn drop_mid_churn_then_recover_loses_nothing() {
    let dir = scratch_dir("recover");
    let server = Server::start_durable(
        &dir,
        ServerConfig {
            workers: 1,
            checkpoint_every: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("durable server starts");
    let mut ids: Vec<JobId> = Vec::new();
    // Job 1 finishes before the drop; the rest (budget-interrupted
    // resumers and plain queued jobs) are in flight or waiting.
    ids.push(server.submit(job(41, quick_config())).unwrap());
    for seed in 42..46u64 {
        ids.push(
            server
                .submit(job(seed, quick_config()).with_iteration_budget(3))
                .unwrap(),
        );
    }
    server.wait(ids[0]).expect("first job completes");
    drop(server); // kill without drain: queue survives on disk

    let (server, report) = Server::recover(&dir).expect("recovery succeeds");
    assert_eq!(report.jobs_seen, 5);
    assert_eq!(report.completed + report.requeued, 5);
    assert!(report.requeued >= 1, "the backlog must survive the drop");
    let stats = server.drain();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);

    let (server, _) = Server::recover(&dir).expect("re-recovery sees the outcomes");
    for (offset, id) in ids.iter().enumerate() {
        let outcome = server
            .outcome(*id)
            .unwrap_or_else(|| panic!("job {offset} lost"));
        assert!(!outcome.stop_reason.is_interrupted());
        // Exact strategy: recovered results are bitwise identical to an
        // uninterrupted cold run of the same spec.
        let inst = SyntheticGenerator::new(
            CircuitSpec::new(format!("durable-{}", 41 + offset as u64), 20, 45)
                .with_seed(41 + offset as u64)
                .with_num_patterns(16),
        )
        .generate()
        .expect("generation succeeds");
        let cold = Flow::prepare(&inst, quick_config())
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("cold run");
        assert_eq!(
            outcome.final_metrics.expect("completed job has metrics"),
            cold.report.final_metrics,
            "job {offset} diverged from its cold run"
        );
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery from a hand-crafted journal describing a *hard* crash: the job
/// was dispatched but never settled (no `requeued`/terminal line), so the
/// recovered server must treat it as interrupted and finish it.
#[test]
fn recovery_replays_a_hard_crash_journal() {
    let dir = scratch_dir("hard-crash");
    let journal = Journal::open(&dir).expect("journal opens");
    journal
        .append(
            "{\"entry\":\"server\",\"workers\":1,\"max_in_flight_per_tenant\":4,\
             \"max_queued_per_tenant\":100,\"checkpoint_every\":null,\"max_attempts\":8}",
        )
        .unwrap();
    let spec = job(51, quick_config());
    let encoded = serde_json::to_string(&spec).unwrap();
    journal
        .append(&format!(
            "{{\"entry\":\"submitted\",\"job\":1,\"resume\":false,\"spec\":{encoded}}}"
        ))
        .unwrap();
    journal
        .append("{\"entry\":\"dispatched\",\"job\":1,\"attempt\":1,\"resumed\":false}")
        .unwrap();
    drop(journal);

    let (server, report) = Server::recover(&dir).expect("recovery succeeds");
    assert_eq!(report.jobs_seen, 1);
    assert_eq!(report.requeued, 1);
    assert_eq!(report.resumed_from_checkpoint, 0, "no checkpoint was taken");
    let outcome = server.wait(JobId::from_u64(1)).expect("job finishes");
    assert!(!outcome.stop_reason.is_interrupted());
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The acceptance property: a durable server with a seeded fault plan
    /// (worker panics, I/O errors, torn writes) is killed mid-churn and
    /// recovered; the drained results must equal a cold run of every job —
    /// bitwise under the exact strategy, to 1e-6 under the adaptive
    /// strategy — with zero lost jobs and all corruption detected.
    #[test]
    fn crash_recover_matches_cold_under_faults(
        seed in 0u64..1000,
        adaptive in 0u8..2,
        budget in 2usize..6,
    ) {
        let adaptive = adaptive == 1;
        let config = if adaptive { adaptive_config() } else { quick_config() };
        let dir = scratch_dir(&format!("prop-{seed}-{adaptive}-{budget}"));
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_panics(0.4, 4)
                .with_io_errors(0.15)
                .with_torn_writes(0.15)
                .with_faulty_attempt_limit(2),
        );
        let server = Server::start_durable_with(
            &dir,
            ServerConfig {
                workers: 2,
                checkpoint_every: Some(2),
                max_attempts: 32,
                ..ServerConfig::default()
            },
            DurableOptions { faults: Some(Arc::clone(&plan)), ..DurableOptions::default() },
        )
        .expect("durable server starts");

        let seeds: Vec<u64> = (0..3).map(|i| 100 + seed * 3 + i).collect();
        let ids: Vec<JobId> = seeds
            .iter()
            .map(|&s| {
                server
                    .submit(
                        job(s, config.clone())
                            .with_iteration_budget(budget)
                            .with_retry(RetryPolicy::retries(4).with_seed(s)),
                    )
                    .unwrap()
            })
            .collect();
        // Let the churn start (first job settles or requeues), then kill.
        server.wait(ids[0]);
        drop(server);

        let (server, report) = Server::recover_with(
            &dir,
            DurableOptions { faults: Some(plan), ..DurableOptions::default() },
        )
        .expect("recovery succeeds");
        prop_assert_eq!(report.jobs_seen, 3);
        server.drain();

        let (server, _) = Server::recover(&dir).expect("outcomes are durable");
        for (&s, &id) in seeds.iter().zip(&ids) {
            let outcome = server.outcome(id);
            let outcome = outcome.unwrap_or_else(|| panic!("job seed {s} lost"));
            prop_assert!(!outcome.stop_reason.is_interrupted());
            let inst = SyntheticGenerator::new(
                CircuitSpec::new(format!("durable-{s}"), 20, 45)
                    .with_seed(s)
                    .with_num_patterns(16),
            )
            .generate()
            .expect("generation succeeds");
            let cold = Flow::prepare(&inst, config.clone())
                .expect("prepare")
                .order()
                .expect("order")
                .size()
                .expect("cold run");
            let got = outcome.final_metrics.expect("completed job has metrics");
            let want = cold.report.final_metrics;
            if adaptive {
                prop_assert!(relative_close(got.area_um2, want.area_um2));
                prop_assert!(relative_close(got.delay_ps, want.delay_ps));
                prop_assert!(relative_close(got.noise_pf, want.noise_pf));
            } else {
                prop_assert_eq!(got, want, "seed {} diverged bitwise", s);
            }
        }
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
