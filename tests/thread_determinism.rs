//! Thread-count determinism of the level-parallel inner loop
//! (`ncgws_core::par`).
//!
//! The `ParallelPolicy::Level` grid fixes chunk boundaries by the data, not
//! the thread count, and merges every cross-chunk reduction in fixed chunk
//! order — so a sizing run must produce **bitwise identical** outcomes for
//! `threads ∈ {1, 2, 8}` (and, for the exact solve strategy, bitwise
//! identical to the sequential policy, which the `property_eval_engine`
//! suite pins to `ncgws_core::reference`). These properties hold with and
//! without the `parallel` cargo feature: the feature only decides whether
//! OS threads execute the grid, never what the grid computes.

use ncgws::core::{Flow, OptimizerConfig, ParallelPolicy, SizedOutcome, SolveStrategy};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("par-{seed}"), gates, gates * 2 + 5)
            .with_seed(seed)
            .with_num_patterns(8)
            .with_channel_size(5),
    )
    .generate()
    .expect("generation succeeds")
}

/// One full two-stage run (random channels, extra per-net and driven-load
/// families so `extra_multipliers` and `constraint_slacks` are non-trivial).
fn run(inst: &ProblemInstance, strategy: SolveStrategy, parallel: ParallelPolicy) -> SizedOutcome {
    let config = OptimizerConfig::builder()
        .max_iterations(40)
        .solve_strategy(strategy)
        .parallel(parallel)
        .per_net_crosstalk_cap(0.95)
        .driven_load_cap(1.5)
        .build()
        .expect("valid configuration");
    Flow::prepare(inst, config)
        .expect("prepare")
        .order()
        .expect("order")
        .size()
        .expect("size")
}

/// Asserts two outcomes are bitwise identical in every surface the issue
/// pins: sizes, extra-family multipliers, per-family slacks, metrics, gap.
fn assert_bitwise_identical(a: &SizedOutcome, b: &SizedOutcome, what: &str) {
    assert_eq!(a.sizes(), b.sizes(), "{what}: sizes");
    assert_eq!(
        a.ogws.extra_multipliers, b.ogws.extra_multipliers,
        "{what}: extra_multipliers"
    );
    assert_eq!(
        a.report.constraint_slacks, b.report.constraint_slacks,
        "{what}: constraint_slacks"
    );
    assert_eq!(
        a.report.final_metrics, b.report.final_metrics,
        "{what}: final_metrics"
    );
    assert_eq!(a.report.duality_gap, b.report.duality_gap, "{what}: gap");
    assert_eq!(a.report.feasible, b.report.feasible, "{what}: feasible");
    assert_eq!(
        a.report.iterations, b.report.iterations,
        "{what}: iteration count"
    );
    assert_eq!(a.ogws.beta, b.ogws.beta, "{what}: beta");
    assert_eq!(a.ogws.gamma, b.ogws.gamma, "{what}: gamma");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Adaptive schedule under the level grid: `threads` ∈ {1, 2, 8} agree
    /// bitwise on every outcome surface.
    #[test]
    fn adaptive_outcomes_are_bitwise_identical_across_thread_counts(
        seed in 0u64..300,
        gates in 12usize..30,
    ) {
        let inst = instance(seed, gates);
        let one = run(&inst, SolveStrategy::adaptive(), ParallelPolicy::threads(1));
        for threads in [2usize, 8] {
            let many = run(&inst, SolveStrategy::adaptive(), ParallelPolicy::threads(threads));
            assert_bitwise_identical(&one, &many, &format!("adaptive threads={threads}"));
        }
    }

    /// Exact schedule: the level grid at any thread count equals the
    /// sequential policy bitwise — which `property_eval_engine` pins to
    /// `ncgws_core::reference`, so the exact path stays reference-pinned
    /// under parallelism by transitivity.
    #[test]
    fn exact_level_policy_stays_pinned_to_the_sequential_path(
        seed in 0u64..300,
        gates in 12usize..26,
    ) {
        let inst = instance(seed, gates);
        let sequential = run(&inst, SolveStrategy::Exact, ParallelPolicy::Sequential);
        for threads in [1usize, 2, 8] {
            let level = run(&inst, SolveStrategy::Exact, ParallelPolicy::threads(threads));
            assert_bitwise_identical(&sequential, &level, &format!("exact threads={threads}"));
        }
    }
}

/// A non-property smoke check that the auto thread count (`threads = 0`)
/// resolves and agrees with an explicit count.
#[test]
fn auto_thread_count_matches_explicit_counts() {
    let inst = instance(7, 20);
    let auto = run(&inst, SolveStrategy::adaptive(), ParallelPolicy::threads(0));
    let two = run(&inst, SolveStrategy::adaptive(), ParallelPolicy::threads(2));
    assert_bitwise_identical(&auto, &two, "auto vs explicit");
}
