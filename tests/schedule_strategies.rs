//! Invariant tests for the adaptive solve schedule (`ncgws_core::schedule`).
//!
//! The exact Figure-8 schedule stays bitwise-pinned to
//! `ncgws_core::reference` (see `property_eval_engine.rs`); the adaptive
//! schedule is validated by invariants instead of bitwise equality:
//!
//! * at fixed multipliers, a warm-started active-set LRS solve reaches the
//!   same unique subproblem optimum as the exact cold solve (the relaxed
//!   subproblem is strictly convex, so both converge to one fixed point);
//! * end to end, the adaptive OGWS run reaches final `CircuitMetrics`
//!   within tolerance of the exact schedule, agrees on feasibility, never
//!   reports a larger duality gap, and its worst relative constraint
//!   violation (the primal-feasibility KKT residual) is no worse;
//! * warm and cold `Flow` runs honor the strategy and stay reproducible.

use ncgws::core::{
    build_coupling, AdaptiveSchedule, ConstraintBounds, Flow, LrsSolver, Multipliers,
    OptimizerConfig, OrderingStrategy, RunControl, SizedOutcome, SizingEngine, SizingProblem,
    SolveStrategy,
};
use ncgws::netlist::{CircuitSpec, ProblemInstance, SyntheticGenerator};
use proptest::prelude::*;

fn instance(seed: u64, gates: usize) -> ProblemInstance {
    SyntheticGenerator::new(
        CircuitSpec::new(format!("sched-{seed}"), gates, gates * 2 + 5)
            .with_seed(seed)
            .with_num_patterns(8),
    )
    .generate()
    .expect("generation succeeds")
}

fn loose_bounds() -> ConstraintBounds {
    ConstraintBounds {
        delay: 1e15,
        total_capacitance: 1e15,
        crosstalk: 1e15,
    }
}

/// A tight adaptive schedule for the equivalence tests: freezing only after
/// several truly calm sweeps and verifying often keeps the trajectory within
/// the solve tolerance of the exact one.
fn tight_schedule() -> AdaptiveSchedule {
    AdaptiveSchedule {
        warm_start: true,
        active_set: true,
        freeze_tolerance: 1e-7,
        freeze_after: 2,
        verify_every: 4,
        incremental: true,
    }
}

fn exact_config(max_iterations: usize) -> OptimizerConfig {
    OptimizerConfig {
        max_iterations,
        ..OptimizerConfig::default()
    }
}

fn adaptive_config(max_iterations: usize, schedule: AdaptiveSchedule) -> OptimizerConfig {
    OptimizerConfig {
        max_iterations,
        solve_strategy: SolveStrategy::Adaptive(schedule),
        ..OptimizerConfig::default()
    }
}

/// Worst relative violation of the three global bounds at an outcome's
/// final metrics — the primal-feasibility component of the KKT residuals.
fn primal_residual(outcome: &SizedOutcome, bounds: &ConstraintBounds) -> f64 {
    let m = &outcome.report.final_metrics;
    let delay = (m.delay_internal - bounds.delay) / bounds.delay.max(1e-12);
    let power =
        (m.total_capacitance_ff - bounds.total_capacitance) / bounds.total_capacitance.max(1e-12);
    let crosstalk = (m.crosstalk_ff - bounds.crosstalk) / bounds.crosstalk.max(1e-12);
    delay.max(power).max(crosstalk).max(0.0)
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// At fixed multipliers the relaxed subproblem has a unique optimum
    /// (Theorem 5), so the warm-started active-set solve and the exact cold
    /// solve must land on the same size vector, from any warm seed.
    #[test]
    fn scheduled_lrs_reaches_the_exact_fixed_point(
        seed in 0u64..300,
        gates in 12usize..36,
        edge_scale in 1e-4f64..1e1,
        beta in 0.0f64..5.0,
        gamma in 0.0f64..5.0,
        warm_size in 0.3f64..6.0,
    ) {
        let inst = instance(seed, gates);
        let ordering = build_coupling(&inst, OrderingStrategy::Woss, false).expect("coupling");
        let problem =
            SizingProblem::new(&inst.circuit, &ordering.coupling, loose_bounds()).expect("problem");
        let mut multipliers = Multipliers::uniform(&inst.circuit, edge_scale, 0.0);
        multipliers.beta = beta;
        multipliers.gamma = gamma;

        let solver = LrsSolver::new(400, 1e-10);
        let mut engine = SizingEngine::for_problem(&problem);
        let mut exact = inst.circuit.minimum_sizes();
        let stats = solver.solve_with(&mut engine, &multipliers, &mut exact);
        prop_assert!(stats.converged, "exact solve must converge");

        // Warm solve from an arbitrary uniform seed, active set and
        // incremental evaluation on.
        let mut adaptive_engine = SizingEngine::for_problem(&problem);
        adaptive_engine.reset_schedule();
        let mut warm = inst.circuit.uniform_sizes(warm_size);
        let sched_stats = solver.solve_scheduled(
            &mut adaptive_engine,
            &problem.extras,
            &multipliers,
            &mut warm,
            &RunControl::new(),
            &tight_schedule(),
        );
        prop_assert!(sched_stats.converged, "scheduled solve must converge");
        for (dense, (&a, &e)) in warm.iter().zip(exact.iter()).enumerate() {
            prop_assert!(
                rel_diff(a, e) <= 1e-5,
                "component {dense}: adaptive {a} vs exact {e}"
            );
        }
    }

    /// End to end: the adaptive schedule reaches final metrics within
    /// tolerance of the exact schedule, agrees on feasibility, reports a
    /// duality gap no larger, and is no less primal-feasible.
    #[test]
    fn adaptive_ogws_tracks_the_exact_schedule(
        seed in 0u64..200,
        gates in 12usize..30,
    ) {
        let inst = instance(seed, gates);

        let exact_run = Flow::prepare(&inst, exact_config(60))
            .expect("prepare")
            .order()
            .expect("order");
        let bounds = exact_run.bounds();
        let exact = exact_run.size().expect("exact sizing");

        let adaptive_run = Flow::prepare(&inst, adaptive_config(60, tight_schedule()))
            .expect("prepare")
            .order()
            .expect("order");
        let adaptive = adaptive_run.size().expect("adaptive sizing");

        prop_assert_eq!(
            adaptive.report.feasible,
            exact.report.feasible,
            "strategies must agree on feasibility"
        );
        if exact.report.feasible {
            let e = &exact.report.final_metrics;
            let a = &adaptive.report.final_metrics;
            for (name, av, ev) in [
                ("area", a.area_um2, e.area_um2),
                ("noise", a.noise_pf, e.noise_pf),
                ("power", a.power_mw, e.power_mw),
                ("delay", a.delay_ps, e.delay_ps),
            ] {
                prop_assert!(
                    rel_diff(av, ev) <= 1e-6,
                    "{name}: adaptive {av} vs exact {ev}"
                );
            }
        }
        prop_assert!(
            adaptive.report.duality_gap <= exact.report.duality_gap + 1e-6,
            "adaptive gap {} must not exceed exact gap {}",
            adaptive.report.duality_gap,
            exact.report.duality_gap
        );
        prop_assert!(
            primal_residual(&adaptive, &bounds) <= primal_residual(&exact, &bounds) + 1e-6,
            "adaptive must be no less primal-feasible"
        );
    }

    /// The default adaptive tuning must spend strictly fewer component
    /// resize operations than the exact schedule while staying feasible
    /// whenever the exact schedule is.
    #[test]
    fn adaptive_schedule_touches_less_work(
        seed in 0u64..200,
        gates in 16usize..36,
    ) {
        let inst = instance(seed, gates);
        let exact = Flow::prepare(&inst, exact_config(50))
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("exact sizing");
        let adaptive = Flow::prepare(&inst, adaptive_config(50, AdaptiveSchedule::default()))
            .expect("prepare")
            .order()
            .expect("order")
            .size()
            .expect("adaptive sizing");

        let exact_touched: usize = exact
            .report
            .iteration_records
            .iter()
            .map(|r| r.touched_components)
            .sum();
        let adaptive_touched: usize = adaptive
            .report
            .iteration_records
            .iter()
            .map(|r| r.touched_components)
            .sum();
        prop_assert!(
            adaptive_touched < exact_touched,
            "adaptive touched {adaptive_touched} vs exact {exact_touched}"
        );
        prop_assert!(adaptive.report.mean_sweeps_per_solve <= exact.report.mean_sweeps_per_solve);
        if exact.report.feasible {
            prop_assert!(adaptive.report.feasible, "adaptive must stay feasible");
        }
    }

    /// Warm and cold adaptive Flow runs are reproducible and a warm run
    /// converges in no more iterations than the cold run that seeded it.
    #[test]
    fn adaptive_flow_runs_are_reproducible_and_warmable(
        seed in 0u64..150,
        gates in 12usize..26,
    ) {
        let inst = instance(seed, gates);
        let ordered = Flow::prepare(&inst, adaptive_config(40, tight_schedule()))
            .expect("prepare")
            .order()
            .expect("order");
        let a = ordered.size().expect("sizing");
        let b = ordered.size().expect("sizing");
        prop_assert_eq!(a.sizes(), b.sizes(), "adaptive cold runs are deterministic");
        prop_assert_eq!(a.report.final_metrics, b.report.final_metrics);

        let mut engine = ordered.engine();
        let control = RunControl::new();
        let c = ordered
            .size_with_engine(&mut engine, None, &control)
            .expect("sizing");
        prop_assert_eq!(a.sizes(), c.sizes(), "engine reuse must not leak state");

        let warm = ordered.size_warm(a.sizes()).expect("warm sizing");
        prop_assert!(warm.report.iterations <= a.report.iterations);
        if a.report.feasible {
            prop_assert!(warm.report.feasible);
        }
    }
}

/// One deterministic end-to-end smoke run with printable diagnostics, to
/// keep a concrete record of what the schedule saves on a mid-size circuit.
#[test]
fn adaptive_schedule_smoke_statistics() {
    let inst = instance(7, 60);
    let exact = Flow::prepare(&inst, exact_config(80))
        .expect("prepare")
        .order()
        .expect("order")
        .size()
        .expect("exact sizing");
    let adaptive = Flow::prepare(&inst, adaptive_config(80, AdaptiveSchedule::default()))
        .expect("prepare")
        .order()
        .expect("order")
        .size()
        .expect("adaptive sizing");

    println!(
        "exact: iters {} sweeps {} mean/solve {:.2} touched/sweep {:.1} feasible {}",
        exact.report.iterations,
        exact.report.sweeps_total,
        exact.report.mean_sweeps_per_solve,
        exact.report.mean_touched_per_sweep,
        exact.report.feasible,
    );
    println!(
        "adaptive: iters {} sweeps {} mean/solve {:.2} touched/sweep {:.1} feasible {}",
        adaptive.report.iterations,
        adaptive.report.sweeps_total,
        adaptive.report.mean_sweeps_per_solve,
        adaptive.report.mean_touched_per_sweep,
        adaptive.report.feasible,
    );
    assert!(adaptive.report.sweeps_total > 0);
    assert!(adaptive.report.mean_touched_per_sweep > 0.0);
    // The headline claim: the adaptive schedule needs markedly fewer sweeps
    // per solve than the exact restart-from-scratch schedule (on this tiny
    // instance the run converges in a handful of iterations, so the margin
    // is conservative; the Table-1-scale circuits show 3–6×).
    assert!(
        adaptive.report.mean_sweeps_per_solve * 1.5 <= exact.report.mean_sweeps_per_solve,
        "adaptive {:.2} sweeps/solve vs exact {:.2}",
        adaptive.report.mean_sweeps_per_solve,
        exact.report.mean_sweeps_per_solve
    );
}
